package hypervisor

import (
	"fmt"

	"repro/internal/mem"
)

// CollapseOutcome classifies one collapse attempt on an aligned run, echoing
// khugepaged's scan result codes.
type CollapseOutcome int

const (
	// CollapseOK: the run was collapsed into one huge mapping.
	CollapseOK CollapseOutcome = iota
	// CollapseAlreadyHuge: the run is already a huge mapping.
	CollapseAlreadyHuge
	// CollapseNotDense: too many absent pages (above the max_ptes_none
	// budget).
	CollapseNotDense
	// CollapseShared: a page in the run is COW-shared or a KSM stable page;
	// collapsing would have to break sharing, which khugepaged refuses.
	CollapseShared
	// CollapseSwapped: a page in the run lives in swap; collapsing under
	// memory pressure would fight the evictor.
	CollapseSwapped
	// CollapseNoMemory: no aligned fully-free frame block was available.
	CollapseNoMemory
)

// String names the outcome for stats tables.
func (o CollapseOutcome) String() string {
	switch o {
	case CollapseOK:
		return "ok"
	case CollapseAlreadyHuge:
		return "already-huge"
	case CollapseNotDense:
		return "not-dense"
	case CollapseShared:
		return "shared"
	case CollapseSwapped:
		return "swapped"
	case CollapseNoMemory:
		return "no-memory"
	}
	return fmt.Sprintf("CollapseOutcome(%d)", int(o))
}

// CollapseHuge attempts to collapse the HugePages-aligned run headed at head
// into one huge mapping, the way khugepaged does: the run must be dense
// (at most maxPtesNone absent pages), fully resident, and privately mapped
// (no COW, no KSM stable pages). On success the run's contents move into a
// freshly allocated contiguous frame block, absent pages materialize as zero
// subpages (THP's memory-bloat cost), and the old frames are released.
func (vm *VMProcess) CollapseHuge(head mem.VPN, maxPtesNone int) CollapseOutcome {
	if head%mem.HugePages != 0 {
		panic(fmt.Sprintf("hypervisor: CollapseHuge at unaligned vpn %d", head))
	}
	if pte, ok := vm.hpt.Lookup(head); ok && pte.Huge {
		if vm.hpt.CarvedCount(head) > 0 {
			return vm.reabsorbCarved(head, pte, maxPtesNone)
		}
		return CollapseAlreadyHuge
	}
	absent := 0
	for i := mem.VPN(0); i < mem.HugePages; i++ {
		pte, ok := vm.hpt.Lookup(head + i)
		switch {
		case !ok:
			absent++
		case pte.Huge:
			return CollapseAlreadyHuge
		case pte.Swapped:
			return CollapseSwapped
		case pte.COW || vm.host.phys.IsKSM(pte.Frame) || vm.host.phys.RefCount(pte.Frame) > 1:
			return CollapseShared
		}
	}
	if absent > maxPtesNone {
		return CollapseNotDense
	}
	base, err := vm.host.phys.AllocHugeBlock()
	if err != nil {
		return CollapseNoMemory
	}
	// Copy resident contents into the block, then drop the old frames. The
	// block's untouched subpages stay lazily zero, so an absent page costs
	// a frame but no bytes until written.
	for i := mem.VPN(0); i < mem.HugePages; i++ {
		pte, ok := vm.hpt.Lookup(head + i)
		if !ok {
			continue
		}
		vm.host.phys.CopyFrame(base+mem.FrameID(i), pte.Frame)
		vm.host.phys.DecRef(pte.Frame)
	}
	vm.hpt.InstallHuge(head, mem.PTE{
		Frame:    base,
		Writable: true,
		LastUse:  vm.host.now(),
		Accessed: true,
	})
	// The formerly-absent pages are resident now — THP's bloat, visible in
	// the resident gauge exactly as on a real host.
	vm.stats.ResidentPages += absent
	vm.host.stats.Collapses++
	return CollapseOK
}

// reabsorbCarved is the FHPM re-promotion step: the run headed at head is
// still huge but has carved subpages; pull each one back into the backing
// block so the mapping covers the whole run again. Like a fresh collapse it
// refuses to break sharing — every carved subpage must be private (or
// absent, with its original frame slot still free and the absent count
// within the max_ptes_none budget). A carved subpage whose original slot
// has since been allocated to someone else fails the attempt with
// CollapseNoMemory, khugepaged's fragmentation failure mode.
func (vm *VMProcess) reabsorbCarved(head mem.VPN, hpte mem.PTE, maxPtesNone int) CollapseOutcome {
	phys := vm.host.phys
	carved := vm.hpt.CarvedSubpages(head)
	absent := 0
	for _, vpn := range carved {
		hole := hpte.Frame + mem.FrameID(vpn-head)
		pte, ok := vm.hpt.Lookup(vpn)
		switch {
		case !ok:
			if !phys.IsFree(hole) {
				return CollapseNoMemory
			}
			absent++
		case pte.Swapped:
			return CollapseSwapped
		case pte.COW || phys.IsKSM(pte.Frame) || phys.RefCount(pte.Frame) > 1:
			return CollapseShared
		case pte.Frame != hole && !phys.IsFree(hole):
			return CollapseNoMemory
		}
	}
	if absent > maxPtesNone {
		return CollapseNotDense
	}
	for _, vpn := range carved {
		hole := hpte.Frame + mem.FrameID(vpn-head)
		pte, ok := vm.hpt.Lookup(vpn)
		switch {
		case !ok:
			// Absent subpage: re-materialize its slot as a zero page (the
			// same bloat a fresh collapse pays for absent pages).
			if !phys.ClaimSpecific(hole) {
				panic(fmt.Sprintf("hypervisor: reabsorb hole %d vanished", hole))
			}
		case pte.Frame == hole:
			// The subpage never moved: restoring the huge flag is enough.
		default:
			if !phys.ClaimSpecific(hole) {
				panic(fmt.Sprintf("hypervisor: reabsorb hole %d vanished", hole))
			}
			phys.CopyFrame(hole, pte.Frame)
			phys.DecRef(pte.Frame)
		}
		phys.ReclaimHugeFrame(hole)
		vm.hpt.UncarveSubpage(head, vpn)
	}
	vm.stats.ResidentPages += absent
	vm.host.stats.Reabsorbs++
	return CollapseOK
}

// SplitHuge dissolves the huge mapping headed at head back into base
// mappings over the same (now independent) frames. Contents are preserved;
// the pages re-enter the eviction queue individually. Carved subpages
// already live as base mappings (possibly pointing elsewhere after COW or
// merging) and are left untouched. KSM's split-to-merge policy and the
// evictor both use this.
func (vm *VMProcess) SplitHuge(head mem.VPN) {
	pte, ok := vm.hpt.Lookup(head)
	if !ok || !pte.Huge || head%mem.HugePages != 0 {
		panic(fmt.Sprintf("hypervisor: SplitHuge at vpn %d: no huge mapping", head))
	}
	carved := vm.hpt.CarvedSubpages(head)
	vm.host.phys.SplitHugeBlock(pte.Frame)
	vm.hpt.SplitHuge(head)
	ci := 0
	for i := mem.VPN(0); i < mem.HugePages; i++ {
		vpn := head + i
		if ci < len(carved) && carved[ci] == vpn {
			ci++
			continue
		}
		vm.host.noteMapped(vm, vpn)
		// A split re-exposes the run's base pages to KSM (huge mappings hide
		// them), so the incremental scanner must revisit each one.
		vm.logDirty(vpn)
	}
	vm.host.stats.HugeSplits++
	if vm.host.OnHugeSplit != nil {
		vm.host.OnHugeSplit(vm, head)
	}
}

// SplitHugeSubpages carves the given subpages (ascending VPNs inside the
// run headed at head) out of the huge mapping: each gets its own base PTE
// and an ordinary refcounted frame, while the remainder of the run stays
// huge. This is the FHPM partial split — KSM uses it to recover just the
// duplicate-bearing subpages, the daemon to demote cold ones.
func (vm *VMProcess) SplitHugeSubpages(head mem.VPN, vpns []mem.VPN) {
	pte, ok := vm.hpt.Lookup(head)
	if !ok || !pte.Huge || head%mem.HugePages != 0 {
		panic(fmt.Sprintf("hypervisor: SplitHugeSubpages at vpn %d: no huge mapping", head))
	}
	if len(vpns) == 0 {
		return
	}
	for _, vpn := range vpns {
		vm.host.phys.ReleaseHugeFrame(pte.Frame + mem.FrameID(vpn-head))
	}
	vm.hpt.SplitHugeSubpages(head, vpns)
	for _, vpn := range vpns {
		vm.host.noteMapped(vm, vpn)
		// The carved page is now an ordinary mergeable base page; tell the
		// incremental scanner to look at it.
		vm.logDirty(vpn)
	}
	vm.host.stats.PartialSplits += uint64(len(vpns))
	if vm.host.OnPartialSplit != nil {
		vm.host.OnPartialSplit(vm, head, len(vpns))
	}
}

// HugeMappings reports how many huge mappings the VM currently holds.
func (vm *VMProcess) HugeMappings() int { return vm.hpt.HugeMappings() }
