package hypervisor

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
)

// CheckLeaks verifies the host's memory bookkeeping after lifecycle events:
// every physical frame's reference count must equal the number of references
// the live state explains (page-table mappings, huge-block membership, the
// host kernel reserve, the demand ledger, and the caller-supplied external
// references — KSM's stable-tree holds), and the swap store's occupied slots
// must correspond one-to-one with swapped PTEs. A kill or restart that
// orphans a frame, leaks a refcount, or strands a swap slot shows up here.
//
// external lists frames holding references outside any page table (pass the
// scanner's StableFrames; each entry accounts one tree reference). The
// returned error describes every class of mismatch, bounded per class; nil
// means the state is exactly accounted for.
func (h *Host) CheckLeaks(external []mem.FrameID) error {
	pm := h.phys
	expected := make([]int, pm.TotalFrames())
	for _, f := range h.kernelFrames {
		expected[f]++
	}
	for _, f := range h.claimed {
		expected[f]++
	}
	for _, f := range external {
		expected[f]++
	}
	slotRefs := make(map[uint32]int)
	for _, vm := range h.vms {
		for _, vpn := range vm.hpt.SortedVPNs() {
			pte, ok := vm.hpt.Lookup(vpn)
			if !ok {
				continue
			}
			switch {
			case pte.Swapped:
				slotRefs[pte.SwapSlot]++
			case pte.Huge:
				// Carved subpages are explained by their own base PTEs
				// (visited by this same walk); the head explains only the
				// uncarved remainder of the block.
				for i := 0; i < mem.HugePages; i++ {
					if vm.hpt.CarvedAt(vpn + mem.VPN(i)) {
						continue
					}
					expected[pte.Frame+mem.FrameID(i)]++
				}
			default:
				expected[pte.Frame]++
			}
		}
	}

	var problems []string
	report := func(class string, count *int, format string, args ...interface{}) {
		*count++
		if *count <= 4 {
			problems = append(problems, class+": "+fmt.Sprintf(format, args...))
		}
	}

	frameMismatches := 0
	for f := 0; f < pm.TotalFrames(); f++ {
		actual := pm.LiveRefCount(mem.FrameID(f))
		if actual != expected[f] {
			report("frame", &frameMismatches, "frame %d refcount %d, state explains %d", f, actual, expected[f])
		}
	}

	doubleMapped := 0
	dangling := 0
	for _, slot := range sortedSlotKeys(slotRefs) {
		if slotRefs[slot] > 1 {
			report("swap", &doubleMapped, "slot %d referenced by %d PTEs", slot, slotRefs[slot])
		}
		if _, ok := h.swap.slots[slot]; !ok {
			report("swap", &dangling, "slot %d referenced by a PTE but free in the store", slot)
		}
	}
	orphanSlots := 0
	for _, slot := range h.swap.liveSlots() {
		if slotRefs[slot] == 0 {
			report("swap", &orphanSlots, "slot %d occupied but referenced by no PTE", slot)
		}
	}

	if total := frameMismatches + doubleMapped + dangling + orphanSlots; total > 0 {
		return fmt.Errorf("hypervisor: %d leak(s): %d frame refcount mismatches, %d double-mapped / %d dangling / %d orphaned swap slots\n  %s",
			total, frameMismatches, doubleMapped, dangling, orphanSlots, strings.Join(problems, "\n  "))
	}
	return nil
}

// sortedSlotKeys orders the slot census for deterministic error messages.
func sortedSlotKeys(m map[uint32]int) []uint32 {
	out := make([]uint32, 0, len(m))
	for slot := range m {
		out = append(out, slot)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
