package hypervisor

import (
	"fmt"

	"repro/internal/mem"
)

// Live-migration primitives. The hypervisor contributes exactly four
// mechanisms — pause/resume, a deterministic enumeration of the guest's
// mapped pages, read-only page export, and page install on the target —
// and the datacenter's migration engine composes them into iterative
// pre-copy. Export never perturbs the source (no faults, no access bits,
// no COW breaks), so pre-copy rounds are invisible to the guest exactly
// as hardware-assisted dirty logging makes them.

// Pause stops the guest's vCPUs for the stop-and-copy phase. Guest memory
// access while paused is a bug in the caller (the traffic generator must
// skip paused guests) and panics in ensureMapped.
func (vm *VMProcess) Pause() {
	if vm.dead {
		panic(fmt.Sprintf("hypervisor: Pause on killed %s", vm.cfg.Name))
	}
	vm.paused = true
}

// Resume restarts the guest's vCPUs (a migration aborted after pause).
func (vm *VMProcess) Resume() { vm.paused = false }

// Paused reports whether the guest's vCPUs are stopped.
func (vm *VMProcess) Paused() bool { return vm.paused }

// MappedGuestPages enumerates, in ascending order, every guest physical
// page that currently has state — resident, swapped, or inside a huge
// run — which is exactly the set a full pre-copy round must transfer.
// Untouched pages have no entry and cost the wire nothing: the
// destination regenerates them as demand-zero.
func (vm *VMProcess) MappedGuestPages() []uint64 {
	guestEnd := vm.memslotBase + mem.VPN(vm.guestPages)
	var out []uint64
	for _, vpn := range vm.hpt.SortedVPNs() {
		if vpn < vm.memslotBase || vpn >= guestEnd {
			continue
		}
		pte, _ := vm.hpt.Lookup(vpn)
		if !pte.Huge {
			out = append(out, uint64(vpn-vm.memslotBase))
			continue
		}
		// A huge head covers a whole aligned run; every covered page is
		// guest state. Carved subpages are excluded here — they have their
		// own entries in this same sorted walk (when still mapped).
		for off := mem.VPN(0); off < mem.HugePages && vpn+off < guestEnd; off++ {
			if vm.hpt.CarvedAt(vpn + off) {
				continue
			}
			out = append(out, uint64(vpn+off-vm.memslotBase))
		}
	}
	return out
}

// ExportGuestPage captures a guest physical page's content as a wire
// descriptor without touching guest state: resident pages (huge runs
// included) export straight from their frame, swapped pages from the swap
// slot's content handle. ok is false for pages with no state — the
// destination owes them nothing.
func (vm *VMProcess) ExportGuestPage(gpfn uint64) (mem.ExportedPage, bool) {
	pte, ok := vm.hpt.Lookup(vm.GPFNToHostVPN(gpfn))
	if !ok {
		return mem.ExportedPage{}, false
	}
	if pte.Swapped {
		return vm.host.phys.ExportContent(vm.host.swap.peek(pte.SwapSlot)), true
	}
	return vm.host.phys.ExportFrame(pte.Frame), true
}

// InstallGuestPage lands an exported page in this (destination) VM: the
// page is faulted in for write — breaking COW if an earlier pre-copy
// round's content was merged or shared in the meantime — and overwritten
// by descriptor. The returned class is the wire-cost signal: zero/seed
// pages and content the destination already holds cost a descriptor,
// only ImportCopy moves page bytes.
func (vm *VMProcess) InstallGuestPage(gpfn uint64, e mem.ExportedPage) mem.ImportClass {
	f := vm.ensureMapped(vm.GPFNToHostVPN(gpfn), true)
	return vm.host.phys.ImportPage(f, e)
}
