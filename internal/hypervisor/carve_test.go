package hypervisor

import (
	"bytes"
	"testing"

	"repro/internal/mem"
	"repro/internal/simclock"
)

// collapsedVM builds a host with a dense collapsed run on one VM.
func collapsedVM(t *testing.T, ramBlocks int) (*Host, *VMProcess) {
	t.Helper()
	h, vm := thpHost(t, ramBlocks, 2*hp)
	fillRun(vm, hp, 11)
	if got := vm.CollapseHuge(vm.MemslotBase(), 0); got != CollapseOK {
		t.Fatalf("setup collapse: %v", got)
	}
	return h, vm
}

func TestSplitHugeSubpagesCarvesWithoutDissolving(t *testing.T) {
	h, vm := collapsedVM(t, 4)
	head := vm.MemslotBase()
	resident := vm.Stats().ResidentPages

	vm.SplitHugeSubpages(head, []mem.VPN{head + 10, head + hp - 1})
	if vm.HugeMappings() != 1 {
		t.Fatal("partial split dissolved the huge mapping")
	}
	if got := h.Phys().HugeFrames(); got != hp-2 {
		t.Fatalf("huge frames %d, want %d", got, hp-2)
	}
	if h.Phys().HugeBlocks() != 1 {
		t.Fatal("block count changed on partial split")
	}
	if h.Stats().PartialSplits != 2 || h.Stats().HugeSplits != 0 {
		t.Fatalf("stats: partial=%d whole=%d", h.Stats().PartialSplits, h.Stats().HugeSplits)
	}
	if got := vm.Stats().ResidentPages; got != resident {
		t.Fatalf("partial split changed resident: %d -> %d", resident, got)
	}
	// Contents are untouched — carved and uncarved alike.
	for _, g := range []uint64{0, 10, 100, hp - 1} {
		want := mem.FillBytes(pg, mem.Combine(11, mem.Seed(g)))
		if got := vm.ReadGuestPage(g); !bytes.Equal(got, want) {
			t.Fatalf("page %d content lost in partial split", g)
		}
	}
	// A carved page is individually releasable without splitting the run.
	vm.ReleaseGuestPage(10)
	if vm.HugeMappings() != 1 || h.Stats().HugeSplits != 0 {
		t.Fatal("releasing a carved page split the whole run")
	}
	if got := vm.Stats().ResidentPages; got != resident-1 {
		t.Fatalf("resident %d after releasing carved page", got)
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leaks with live carve state: %v", err)
	}
}

func TestReabsorbCarvedSubpages(t *testing.T) {
	h, vm := collapsedVM(t, 4)
	head := vm.MemslotBase()
	vm.SplitHugeSubpages(head, []mem.VPN{head + 10, head + 20})
	// One carved page mutates in place (still private, same frame).
	vm.FillGuestPage(20, 999)

	if got := vm.CollapseHuge(head, 0); got != CollapseOK {
		t.Fatalf("reabsorb: %v", got)
	}
	if h.Stats().Reabsorbs != 1 {
		t.Fatalf("reabsorb counter %d", h.Stats().Reabsorbs)
	}
	if vm.hpt.CarvedCount(head) != 0 {
		t.Fatal("carve state survived reabsorb")
	}
	if got := h.Phys().HugeFrames(); got != hp {
		t.Fatalf("huge frames %d after reabsorb, want %d", got, hp)
	}
	// The mutated content rides back into the block.
	if got := vm.ReadGuestPage(20); !bytes.Equal(got, mem.FillBytes(pg, 999)) {
		t.Fatal("mutated carved content lost in reabsorb")
	}
	if got := vm.ReadGuestPage(10); !bytes.Equal(got, mem.FillBytes(pg, mem.Combine(11, mem.Seed(10)))) {
		t.Fatal("unmutated carved content lost in reabsorb")
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leaks after reabsorb: %v", err)
	}
	// Nothing carved anymore: the next attempt is a plain already-huge.
	if got := vm.CollapseHuge(head, 0); got != CollapseAlreadyHuge {
		t.Fatalf("re-collapse after reabsorb: %v", got)
	}
}

func TestReabsorbRefusesSharedCarvedPage(t *testing.T) {
	_, vm := collapsedVM(t, 4)
	head := vm.MemslotBase()
	vm.SplitHugeSubpages(head, []mem.VPN{head + 10})
	vm.WriteProtect(head + 10)
	if got := vm.CollapseHuge(head, 0); got != CollapseShared {
		t.Fatalf("reabsorb over COW carved page: %v", got)
	}
	if vm.hpt.CarvedCount(head) != 1 {
		t.Fatal("refused reabsorb mutated carve state")
	}
}

func TestReabsorbAbsentCarvedPageWithinBudget(t *testing.T) {
	h, vm := collapsedVM(t, 4)
	head := vm.MemslotBase()
	vm.SplitHugeSubpages(head, []mem.VPN{head + 10})
	vm.ReleaseGuestPage(10)
	resident := vm.Stats().ResidentPages

	// Budget 0: the absent subpage exceeds max_ptes_none.
	if got := vm.CollapseHuge(head, 0); got != CollapseNotDense {
		t.Fatalf("reabsorb over budget: %v", got)
	}
	// Budget 1: the hole re-materializes as a zero page (bloat, as in a
	// fresh collapse).
	if got := vm.CollapseHuge(head, 1); got != CollapseOK {
		t.Fatalf("reabsorb within budget: %v", got)
	}
	if got := vm.Stats().ResidentPages; got != resident+1 {
		t.Fatalf("resident %d, want %d (+bloat)", got, resident+1)
	}
	if got := vm.ReadGuestPage(10); !bytes.Equal(got, make([]byte, pg)) {
		t.Fatal("re-materialized page not zero")
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leaks after absent reabsorb: %v", err)
	}
}

func TestReabsorbFailsWhenHoleOccupied(t *testing.T) {
	_, vm := collapsedVM(t, 4)
	head := vm.MemslotBase()
	vm.SplitHugeSubpages(head, []mem.VPN{head + 10})
	// Free the carved frame, let an unrelated page claim the hole, then
	// re-fault the carved page at a different frame.
	vm.ReleaseGuestPage(10)
	vm.FillGuestPage(hp+1, 500) // grabs the just-freed hole frame
	vm.FillGuestPage(10, 501)   // carved page returns elsewhere
	pte, _ := vm.hpt.Lookup(head + 10)
	if pte.Frame == vm.mustHugeFrame(t, head)+10 {
		t.Skip("allocator handed the hole back; occupation scenario not reachable")
	}
	if got := vm.CollapseHuge(head, 0); got != CollapseNoMemory {
		t.Fatalf("reabsorb with occupied hole: %v", got)
	}
}

// mustHugeFrame returns the backing block base of the huge run at head.
func (vm *VMProcess) mustHugeFrame(t *testing.T, head mem.VPN) mem.FrameID {
	t.Helper()
	pte, ok := vm.hpt.Lookup(head)
	if !ok || !pte.Huge {
		t.Fatalf("no huge mapping at %d", head)
	}
	return pte.Frame
}

func TestKillVMWithCarvedSubpages(t *testing.T) {
	h, vm := collapsedVM(t, 4)
	head := vm.MemslotBase()
	vm.SplitHugeSubpages(head, []mem.VPN{head + 10, head + 20})
	vm.ReleaseGuestPage(20) // one carved page absent at kill time
	h.KillVM(vm)
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leaks after killing VM with carved pages: %v", err)
	}
	if h.Phys().HugeFrames() != 0 || h.Phys().HugeBlocks() != 0 {
		t.Fatal("huge state survived the kill")
	}
}

func TestEvictionSplitHandlesCarvedRun(t *testing.T) {
	// Memory pressure on a partially carved run: the evictor's whole-block
	// split must skip the carved entries (they live as base pages already).
	h, vm := thpHost(t, 2, hp)
	fillRun(vm, hp, 5)
	if got := vm.CollapseHuge(vm.MemslotBase(), 0); got != CollapseOK {
		t.Fatalf("collapse: %v", got)
	}
	vm.SplitHugeSubpages(vm.MemslotBase(), []mem.VPN{vm.MemslotBase() + 3})
	vm2 := h.NewVM(VMConfig{Name: "late", GuestMemBytes: int64(2*hp) * pg, Seed: 2})
	for i := uint64(0); i < hp+64; i++ {
		vm2.FillGuestPage(i, mem.Seed(100+i))
	}
	if vm.HugeMappings() != 0 {
		t.Fatal("eviction never split the carved huge mapping")
	}
	if got := vm.ReadGuestPage(3); !bytes.Equal(got, mem.FillBytes(pg, mem.Combine(5, mem.Seed(3)))) {
		t.Fatal("carved page content lost across eviction split")
	}
	if err := h.CheckLeaks(nil); err != nil {
		t.Fatalf("leaks after pressure on carved run: %v", err)
	}
}

func TestDirtyRingFeedsSubpageHeat(t *testing.T) {
	h := NewHost(Config{Name: "t", RAMBytes: 4 * hp * pg, DirtyLog: true}, simclock.New())
	vm := h.NewVM(VMConfig{Name: "vm", GuestMemBytes: int64(2*hp) * pg, Seed: 1})
	fillRun(vm, hp, 7)
	if got := vm.CollapseHuge(vm.MemslotBase(), 0); got != CollapseOK {
		t.Fatalf("collapse: %v", got)
	}
	vm.DrainDirtyLog() // discard the fill/collapse backlog

	// A write inside the huge run lands in the ring; draining feeds heat.
	vm.FillGuestPage(5, 123)
	vm.DrainDirtyLog()
	if got := vm.hpt.SubpageHeat(vm.MemslotBase() + 5); got == 0 {
		t.Fatal("drain did not feed subpage heat")
	}

	// Reset (the linear scanner's path) feeds heat too when huge mappings
	// exist.
	vm.FillGuestPage(9, 124)
	vm.ResetDirtyLog()
	if got := vm.hpt.SubpageHeat(vm.MemslotBase() + 9); got == 0 {
		t.Fatal("reset did not feed subpage heat")
	}
}
