package hypervisor

import "repro/internal/mem"

// swapStore holds the contents of evicted pages. Zero pages are stored as
// nil slices so an idle over-committed guest costs almost no simulator
// memory, mirroring how little disk traffic it causes in reality.
type swapStore struct {
	pageSize int
	maxPages int // 0 = unbounded
	slots    map[uint32][]byte
	next     uint32
	freed    []uint32
}

func newSwapStore(maxBytes int64, pageSize int) *swapStore {
	maxPages := 0
	if maxBytes > 0 {
		maxPages = int(maxBytes / int64(pageSize))
	}
	return &swapStore{
		pageSize: pageSize,
		maxPages: maxPages,
		slots:    make(map[uint32][]byte),
	}
}

// out copies frame contents into a fresh swap slot, reporting false when the
// store is full.
func (s *swapStore) out(pm *mem.PhysMem, f mem.FrameID) (uint32, bool) {
	if s.maxPages > 0 && len(s.slots) >= s.maxPages {
		return 0, false
	}
	var slot uint32
	if n := len(s.freed); n > 0 {
		slot = s.freed[n-1]
		s.freed = s.freed[:n-1]
	} else {
		slot = s.next
		s.next++
	}
	if pm.IsZero(f) {
		s.slots[slot] = nil
	} else {
		buf := make([]byte, s.pageSize)
		copy(buf, pm.Bytes(f))
		s.slots[slot] = buf
	}
	return slot, true
}

// in restores a swap slot's contents into frame f and releases the slot.
func (s *swapStore) in(pm *mem.PhysMem, slot uint32, f mem.FrameID) {
	buf, ok := s.slots[slot]
	if !ok {
		panic("hypervisor: swap-in from free slot")
	}
	if buf != nil {
		pm.Write(f, 0, buf)
	}
	delete(s.slots, slot)
	s.freed = append(s.freed, slot)
}

// drop releases a slot without restoring it (the mapping was unmapped while
// swapped out).
func (s *swapStore) drop(slot uint32) {
	if _, ok := s.slots[slot]; !ok {
		panic("hypervisor: drop of free swap slot")
	}
	delete(s.slots, slot)
	s.freed = append(s.freed, slot)
}

func (s *swapStore) usedBytes() int64 {
	return int64(len(s.slots)) * int64(s.pageSize)
}
