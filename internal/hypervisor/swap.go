package hypervisor

import (
	"sort"

	"repro/internal/mem"
)

// swapStore holds the contents of evicted pages as mem.PageContent handles
// rather than byte copies: swapping a page out aliases its content blob, so
// slots holding identical pages share one buffer and swapping costs no
// 4 KiB copy. Zero pages canonicalize to the zero handle so an idle
// over-committed guest costs almost no simulator memory, mirroring how
// little disk traffic it causes in reality.
//
// The *simulated* disk accounting is unchanged by the handle
// representation: every non-zero slot is charged a full page of swap bytes
// regardless of how the simulator stores it, exactly as before the
// content-store refactor (only the Go heap is deduplicated).
type swapStore struct {
	pageSize int
	maxPages int // 0 = unbounded
	slots    map[uint32]mem.PageContent
	// zeroSlots counts occupied slots holding the zero page. They consume a
	// slot but no disk bytes, and usedBytes must not charge them at full
	// page size.
	zeroSlots int
	next      uint32
	freed     []uint32
}

func newSwapStore(maxBytes int64, pageSize int) *swapStore {
	maxPages := 0
	if maxBytes > 0 {
		maxPages = int(maxBytes / int64(pageSize))
	}
	return &swapStore{
		pageSize: pageSize,
		maxPages: maxPages,
		slots:    make(map[uint32]mem.PageContent),
	}
}

// out snapshots frame contents into a fresh swap slot, reporting false when
// the store is full.
func (s *swapStore) out(pm *mem.PhysMem, f mem.FrameID) (uint32, bool) {
	if s.maxPages > 0 && len(s.slots) >= s.maxPages {
		return 0, false
	}
	var slot uint32
	if n := len(s.freed); n > 0 {
		slot = s.freed[n-1]
		s.freed = s.freed[:n-1]
	} else {
		slot = s.next
		s.next++
	}
	c := pm.Snapshot(f)
	if c.IsZero() {
		s.zeroSlots++
	}
	s.slots[slot] = c
	return slot, true
}

// in restores a swap slot's contents into frame f and releases the slot.
func (s *swapStore) in(pm *mem.PhysMem, slot uint32, f mem.FrameID) {
	c, ok := s.slots[slot]
	if !ok {
		panic("hypervisor: swap-in from free slot")
	}
	if c.IsZero() {
		s.zeroSlots--
	}
	pm.Restore(f, c)
	delete(s.slots, slot)
	s.freed = append(s.freed, slot)
}

// peek returns a slot's content handle without consuming the slot, for
// read-only export during migration. The handle is borrowed: the slot
// keeps its reference and the caller must not Release it.
func (s *swapStore) peek(slot uint32) mem.PageContent {
	c, ok := s.slots[slot]
	if !ok {
		panic("hypervisor: peek at free swap slot")
	}
	return c
}

// drop releases a slot without restoring it (the mapping was unmapped while
// swapped out).
func (s *swapStore) drop(pm *mem.PhysMem, slot uint32) {
	c, ok := s.slots[slot]
	if !ok {
		panic("hypervisor: drop of free swap slot")
	}
	if c.IsZero() {
		s.zeroSlots--
	}
	pm.Release(c)
	delete(s.slots, slot)
	s.freed = append(s.freed, slot)
}

// usedBytes reports the swap disk occupancy. Zero-page slots cost no disk
// bytes (they are reconstructed on swap-in, the zswap same-filled
// optimization), so only non-zero slots are charged — and every non-zero
// slot is charged a full page even when slots share a content blob.
func (s *swapStore) usedBytes() int64 {
	return int64(len(s.slots)-s.zeroSlots) * int64(s.pageSize)
}

// usedSlots reports how many slots are occupied, zero-page slots included.
func (s *swapStore) usedSlots() int { return len(s.slots) }

// liveSlots returns the occupied slot numbers in ascending order, for the
// leak checker's census against swapped PTEs.
func (s *swapStore) liveSlots() []uint32 {
	out := make([]uint32, 0, len(s.slots))
	for slot := range s.slots {
		out = append(out, slot)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
