package placement

import (
	"testing"

	"repro/internal/workload"
)

const scale = 64

func TestSimilarity(t *testing.T) {
	a := Fingerprint{1: {}, 2: {}, 3: {}}
	b := Fingerprint{2: {}, 3: {}, 4: {}}
	if Similarity(a, b) != 2 || Similarity(b, a) != 2 {
		t.Fatal("similarity wrong")
	}
	if Similarity(a, Fingerprint{}) != 0 {
		t.Fatal("empty fingerprint similarity")
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	pl := RoundRobin(6, 2)
	if len(pl) != 2 || len(pl[0]) != 3 || len(pl[1]) != 3 {
		t.Fatalf("round robin: %+v", pl)
	}
	// Alternating assignment.
	if pl[0][0] != 0 || pl[1][0] != 1 {
		t.Fatalf("order: %+v", pl)
	}
}

func TestFingerprintsDistinguishWorkloads(t *testing.T) {
	dt1 := FingerprintSpec(workload.DayTrader(), false, scale, 1)
	dt2 := FingerprintSpec(workload.DayTrader(), false, scale, 2)
	tus := FingerprintSpec(workload.Tuscany(), false, scale, 3)
	if len(dt1) == 0 || len(tus) == 0 {
		t.Fatal("empty fingerprints")
	}
	sameSim := Similarity(dt1, dt2)
	crossSim := Similarity(dt1, tus)
	if sameSim <= crossSim {
		t.Fatalf("same-workload similarity %d not above cross-workload %d", sameSim, crossSim)
	}
}

func TestBySimilarityGroupsSameWorkload(t *testing.T) {
	// Two DayTrader and two Tuscany VMs, interleaved; similarity packing
	// must put like with like.
	specs := []workload.Spec{workload.DayTrader(), workload.Tuscany(), workload.DayTrader(), workload.Tuscany()}
	reqs := make([]Request, len(specs))
	for i, s := range specs {
		reqs[i] = Request{Spec: s, Fingerprint: FingerprintSpec(s, false, scale, 0)}
	}
	pl := BySimilarity(reqs, 2, 2)
	for _, bin := range pl {
		if len(bin) != 2 {
			t.Fatalf("uneven packing: %+v", pl)
		}
		if reqs[bin[0]].Spec.Name != reqs[bin[1]].Spec.Name {
			t.Fatalf("similarity packing mixed workloads: %+v", pl)
		}
	}
}

func TestSmartPlacementSavesMore(t *testing.T) {
	// The Memory Buddies claim: colocating similar VMs increases TPS
	// savings versus content-blind round-robin. The requests arrive grouped
	// (two DayTrader then two Tuscany), so round-robin splits each pair
	// across hosts while similarity packing reunites them.
	specs := []workload.Spec{workload.DayTrader(), workload.DayTrader(), workload.Tuscany(), workload.Tuscany()}
	reqs := make([]Request, len(specs))
	for i, s := range specs {
		reqs[i] = Request{Spec: s, Fingerprint: FingerprintSpec(s, false, scale, 0)}
	}
	rr := Evaluate(reqs, RoundRobin(len(reqs), 2), false, scale, 0)
	smart := Evaluate(reqs, BySimilarity(reqs, 2, 2), false, scale, 0)
	if smart.TotalSavedMB <= rr.TotalSavedMB {
		t.Fatalf("smart placement saved %.0f MB, round-robin %.0f MB",
			smart.TotalSavedMB, rr.TotalSavedMB)
	}
	if smart.TotalUsedMB >= rr.TotalUsedMB {
		t.Fatalf("smart placement used %.0f MB, round-robin %.0f MB",
			smart.TotalUsedMB, rr.TotalUsedMB)
	}
	if smart.String() == "" {
		t.Fatal("empty render")
	}
}
