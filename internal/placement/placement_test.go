package placement

import (
	"math/rand"
	"testing"
)

func TestSimilarity(t *testing.T) {
	a := Fingerprint{1: {}, 2: {}, 3: {}}
	b := Fingerprint{2: {}, 3: {}, 4: {}}
	if Similarity(a, b) != 2 || Similarity(b, a) != 2 {
		t.Fatal("similarity wrong")
	}
	if Similarity(a, Fingerprint{}) != 0 {
		t.Fatal("empty fingerprint similarity")
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	pl := RoundRobin(6, 2)
	if len(pl) != 2 || len(pl[0]) != 3 || len(pl[1]) != 3 {
		t.Fatalf("round robin: %+v", pl)
	}
	// Alternating assignment.
	if pl[0][0] != 0 || pl[1][0] != 1 {
		t.Fatalf("order: %+v", pl)
	}
}

// randomFP builds a deterministic random fingerprint drawing n checksums
// from a universe small enough to force overlaps.
func randomFP(rng *rand.Rand, n, universe int) Fingerprint {
	fp := make(Fingerprint, n)
	for len(fp) < n {
		fp[uint64(rng.Intn(universe))] = struct{}{}
	}
	return fp
}

// TestIntersectMatchesSimilarity drives the sorted-slice intersection —
// merge walk, galloping path, and disjoint short-circuit — against the
// map-based reference across shapes.
func TestIntersectMatchesSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		na, nb := rng.Intn(200), rng.Intn(200)
		if trial%5 == 0 {
			na = rng.Intn(4) // lopsided: exercises the galloping path
			nb = 150 + rng.Intn(1000)
		}
		a := randomFP(rng, na, 2000)
		b := randomFP(rng, nb, 2000)
		if got, want := Intersect(a.Sorted(), b.Sorted()), Similarity(a, b); got != want {
			t.Fatalf("trial %d: Intersect=%d, Similarity=%d (|a|=%d |b|=%d)", trial, got, want, na, nb)
		}
	}
	// Disjoint ranges short-circuit but must still answer zero.
	lo := Fingerprint{1: {}, 2: {}, 3: {}}
	hi := Fingerprint{100: {}, 200: {}}
	if Intersect(lo.Sorted(), hi.Sorted()) != 0 {
		t.Fatal("disjoint fingerprints intersect")
	}
	if Intersect(nil, hi.Sorted()) != 0 || Intersect(lo.Sorted(), nil) != 0 {
		t.Fatal("empty fingerprint intersects")
	}
}

// bySimilarityReference is the pre-optimization packer: full host-candidate
// similarity recomputed for every seat. Kept as the oracle the incremental
// version must match placement-for-placement.
func bySimilarityReference(reqs []Request, hosts, perHost int) Placement {
	placed := make([]bool, len(reqs))
	pl := make(Placement, hosts)
	for h := 0; h < hosts; h++ {
		seed := -1
		for i := range reqs {
			if !placed[i] {
				seed = i
				break
			}
		}
		if seed < 0 {
			break
		}
		placed[seed] = true
		pl[h] = append(pl[h], seed)
		hostFP := make(Fingerprint, len(reqs[seed].Fingerprint))
		for hsh := range reqs[seed].Fingerprint {
			hostFP[hsh] = struct{}{}
		}
		for len(pl[h]) < perHost {
			best, bestSim := -1, -1
			for i := range reqs {
				if placed[i] {
					continue
				}
				if s := Similarity(hostFP, reqs[i].Fingerprint); s > bestSim {
					best, bestSim = i, s
				}
			}
			if best < 0 {
				break
			}
			placed[best] = true
			pl[h] = append(pl[h], best)
			for hsh := range reqs[best].Fingerprint {
				hostFP[hsh] = struct{}{}
			}
		}
	}
	return pl
}

// TestBySimilarityMatchesReference: the cached-intersection packer must
// produce bit-identical placements to the quadratic reference on random
// request populations, including overlapping fingerprints, empty
// fingerprints, and more requests than seats.
func TestBySimilarityMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(24)
		reqs := make([]Request, n)
		for i := range reqs {
			size := rng.Intn(120)
			if rng.Intn(8) == 0 {
				size = 0
			}
			reqs[i] = Request{Fingerprint: randomFP(rng, size, 400)}
		}
		hosts := 1 + rng.Intn(5)
		perHost := 1 + rng.Intn(6)
		got := BySimilarity(reqs, hosts, perHost)
		want := bySimilarityReference(reqs, hosts, perHost)
		if len(got) != len(want) {
			t.Fatalf("trial %d: host count %d vs %d", trial, len(got), len(want))
		}
		for h := range want {
			if len(got[h]) != len(want[h]) {
				t.Fatalf("trial %d host %d: %v vs reference %v", trial, h, got[h], want[h])
			}
			for k := range want[h] {
				if got[h][k] != want[h][k] {
					t.Fatalf("trial %d host %d: %v vs reference %v", trial, h, got[h], want[h])
				}
			}
		}
	}
}
