// Package placement implements the Memory Buddies baseline (Wood et al.,
// VEE '09), which the paper's related-work section discusses: instead of
// making pages identical (the paper's technique), Memory Buddies *places*
// VMs with similar memory content on the same host so that whatever
// sharing potential exists is actually exploitable by TPS.
//
// As in the original system, each VM gets a content fingerprint — here the
// set of page-content checksums of its guest memory after a solo warm-up
// run — and a greedy packer collocates VMs with the largest fingerprint
// intersections. The evaluation then builds one simulated host per bin and
// measures the real TPS savings, so the comparison with round-robin
// placement is end to end.
package placement

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/workload"
)

// Fingerprint is a VM's memory-content summary: the set of page checksums,
// as Memory Buddies' Bloom-filter fingerprints approximate.
type Fingerprint map[uint64]struct{}

// Similarity estimates the shareable pages between two VMs as the
// fingerprint intersection size.
func Similarity(a, b Fingerprint) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for h := range a {
		if _, ok := b[h]; ok {
			n++
		}
	}
	return n
}

// FingerprintSpec runs one VM of the given workload solo (no KSM, ample
// host memory) and fingerprints its guest memory.
func FingerprintSpec(spec workload.Spec, shared bool, scale int, seed mem.Seed) Fingerprint {
	c := core.BuildCluster(core.ClusterConfig{
		Scale:         scale,
		Specs:         []workload.Spec{spec},
		NumVMs:        1,
		SharedClasses: shared,
		DisableKSM:    true,
		BaseSeed:      seed,
		SteadyRounds:  10,
	})
	c.Run()
	fp := make(Fingerprint)
	vm := c.Host.VMs()[0]
	pm := c.Host.Phys()
	for _, reg := range vm.MergeableRegions() {
		for vpn := reg.Start; vpn < reg.End; vpn++ {
			if f, ok := vm.ResolveResident(vpn); ok {
				fp[pm.Checksum(f)] = struct{}{}
			}
		}
	}
	return fp
}

// Request is one VM to place.
type Request struct {
	Spec workload.Spec
	// Fingerprint may be nil for round-robin placement.
	Fingerprint Fingerprint
}

// Placement assigns request indices to hosts.
type Placement [][]int

// RoundRobin spreads requests evenly without looking at content.
func RoundRobin(n, hosts int) Placement {
	pl := make(Placement, hosts)
	for i := 0; i < n; i++ {
		pl[i%hosts] = append(pl[i%hosts], i)
	}
	return pl
}

// BySimilarity packs requests greedily: each host is seeded with the first
// unplaced request and filled with the requests whose fingerprints overlap
// the host's current content the most — Memory Buddies' smart colocation.
func BySimilarity(reqs []Request, hosts, perHost int) Placement {
	placed := make([]bool, len(reqs))
	pl := make(Placement, hosts)
	for h := 0; h < hosts; h++ {
		// Seed with the first unplaced request.
		seed := -1
		for i := range reqs {
			if !placed[i] {
				seed = i
				break
			}
		}
		if seed < 0 {
			break
		}
		placed[seed] = true
		pl[h] = append(pl[h], seed)
		hostFP := cloneFP(reqs[seed].Fingerprint)
		for len(pl[h]) < perHost {
			best, bestSim := -1, -1
			for i := range reqs {
				if placed[i] {
					continue
				}
				if s := Similarity(hostFP, reqs[i].Fingerprint); s > bestSim {
					best, bestSim = i, s
				}
			}
			if best < 0 {
				break
			}
			placed[best] = true
			pl[h] = append(pl[h], best)
			for hsh := range reqs[best].Fingerprint {
				hostFP[hsh] = struct{}{}
			}
		}
	}
	return pl
}

func cloneFP(fp Fingerprint) Fingerprint {
	out := make(Fingerprint, len(fp))
	for h := range fp {
		out[h] = struct{}{}
	}
	return out
}

// HostResult is one host's measured memory outcome.
type HostResult struct {
	HostIndex  int
	Workloads  []string
	UsedMB     float64
	SavedMB    float64
	GuestCount int
}

// EvalResult is the end-to-end outcome of a placement.
type EvalResult struct {
	Hosts        []HostResult
	TotalUsedMB  float64
	TotalSavedMB float64
}

// Evaluate builds one simulated host per placement bin, runs it to steady
// state with KSM, and measures real usage and savings.
func Evaluate(reqs []Request, pl Placement, shared bool, scale int, seed mem.Seed) EvalResult {
	var res EvalResult
	for h, bin := range pl {
		if len(bin) == 0 {
			continue
		}
		specs := make([]workload.Spec, 0, len(bin))
		names := make([]string, 0, len(bin))
		for _, i := range bin {
			specs = append(specs, reqs[i].Spec)
			names = append(names, reqs[i].Spec.Name)
		}
		sort.Strings(names)
		c := core.BuildCluster(core.ClusterConfig{
			Scale:         scale,
			Specs:         specs,
			NumVMs:        len(specs),
			SharedClasses: shared,
			BaseSeed:      mem.Combine(seed, mem.Seed(h+1)),
			SteadyRounds:  15,
		})
		c.Run()
		a := c.Analyze()
		hr := HostResult{HostIndex: h, Workloads: names, GuestCount: len(specs)}
		for _, b := range a.VMBreakdowns() {
			hr.UsedMB += float64(b.Total()*int64(scale)) / (1 << 20)
			hr.SavedMB += float64(b.SavingsBytes*int64(scale)) / (1 << 20)
		}
		res.Hosts = append(res.Hosts, hr)
		res.TotalUsedMB += hr.UsedMB
		res.TotalSavedMB += hr.SavedMB
	}
	return res
}

// String renders the result compactly.
func (r EvalResult) String() string {
	s := ""
	for _, h := range r.Hosts {
		s += fmt.Sprintf("host %d: %v — used %.0f MB, TPS saved %.0f MB\n", h.HostIndex, h.Workloads, h.UsedMB, h.SavedMB)
	}
	s += fmt.Sprintf("TOTAL used %.0f MB, saved %.0f MB\n", r.TotalUsedMB, r.TotalSavedMB)
	return s
}
