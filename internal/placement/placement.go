// Package placement implements the Memory Buddies baseline (Wood et al.,
// VEE '09), which the paper's related-work section discusses: instead of
// making pages identical (the paper's technique), Memory Buddies *places*
// VMs with similar memory content on the same host so that whatever
// sharing potential exists is actually exploitable by TPS.
//
// As in the original system, each VM gets a content fingerprint — here the
// set of page-content checksums of its guest memory after a solo warm-up
// run — and a greedy packer collocates VMs with the largest fingerprint
// intersections. The package holds only the pure placement algorithms;
// fingerprinting a live workload and evaluating a placement end to end
// live in internal/core, which owns the simulated clusters.
package placement

import (
	"sort"

	"repro/internal/workload"
)

// Fingerprint is a VM's memory-content summary: the set of page checksums,
// as Memory Buddies' Bloom-filter fingerprints approximate.
type Fingerprint map[uint64]struct{}

// SortedFP is a fingerprint in sorted-slice form. Intersections over
// sorted slices walk both sides once (or gallop when one side is much
// smaller) instead of probing a hash map per element, and they
// short-circuit on disjoint checksum ranges — the representation the
// packer and the datacenter scheduler use on their hot paths.
type SortedFP []uint64

// Sorted converts the set form to the sorted-slice form.
func (fp Fingerprint) Sorted() SortedFP {
	out := make(SortedFP, 0, len(fp))
	for h := range fp {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Intersect counts the checksums two sorted fingerprints share. Disjoint
// ranges return immediately; a heavily lopsided pair gallops through the
// large side by binary search; otherwise a single merge walk does it.
func Intersect(a, b SortedFP) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 || a[len(a)-1] < b[0] || b[len(b)-1] < a[0] {
		return 0
	}
	n := 0
	if len(b) >= 32*len(a) {
		for _, v := range a {
			i := sort.Search(len(b), func(j int) bool { return b[j] >= v })
			if i == len(b) {
				break
			}
			if b[i] == v {
				n++
				i++
			}
			b = b[i:]
		}
		return n
	}
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Similarity estimates the shareable pages between two VMs as the
// fingerprint intersection size.
func Similarity(a, b Fingerprint) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for h := range a {
		if _, ok := b[h]; ok {
			n++
		}
	}
	return n
}

// Request is one VM to place.
type Request struct {
	Spec workload.Spec
	// Fingerprint may be nil for round-robin placement.
	Fingerprint Fingerprint
}

// Placement assigns request indices to hosts.
type Placement [][]int

// RoundRobin spreads requests evenly without looking at content.
func RoundRobin(n, hosts int) Placement {
	pl := make(Placement, hosts)
	for i := 0; i < n; i++ {
		pl[i%hosts] = append(pl[i%hosts], i)
	}
	return pl
}

// BySimilarity packs requests greedily: each host is seeded with the first
// unplaced request and filled with the requests whose fingerprints overlap
// the host's current content the most — Memory Buddies' smart colocation.
//
// Candidate similarities are cached and updated incrementally: admitting a
// member contributes only its delta (the checksums it adds to the host's
// union) to every remaining candidate, and the deltas partition the host
// fingerprint, so the cached score always equals the full host-candidate
// intersection the old quadratic rescan computed. Placements are
// bit-identical to that reference (same strict-improvement, first-index
// tie-break), without recomputing every host×candidate pair per seat.
func BySimilarity(reqs []Request, hosts, perHost int) Placement {
	fps := make([]SortedFP, len(reqs))
	for i, r := range reqs {
		fps[i] = r.Fingerprint.Sorted()
	}
	placed := make([]bool, len(reqs))
	sim := make([]int, len(reqs))
	pl := make(Placement, hosts)
	for h := 0; h < hosts; h++ {
		// Seed with the first unplaced request.
		seed := -1
		for i := range reqs {
			if !placed[i] {
				seed = i
				break
			}
		}
		if seed < 0 {
			break
		}
		hostFP := make(Fingerprint)
		for i := range sim {
			sim[i] = 0
		}
		admit := func(member int) {
			placed[member] = true
			pl[h] = append(pl[h], member)
			delta := make(SortedFP, 0, len(fps[member]))
			for _, hsh := range fps[member] {
				if _, ok := hostFP[hsh]; !ok {
					hostFP[hsh] = struct{}{}
					delta = append(delta, hsh)
				}
			}
			if len(delta) == 0 {
				return
			}
			for i := range reqs {
				if !placed[i] {
					sim[i] += Intersect(delta, fps[i])
				}
			}
		}
		admit(seed)
		for len(pl[h]) < perHost {
			best, bestSim := -1, -1
			for i := range reqs {
				if !placed[i] && sim[i] > bestSim {
					best, bestSim = i, sim[i]
				}
			}
			if best < 0 {
				break
			}
			admit(best)
		}
	}
	return pl
}
