package workload

import (
	"testing"

	"repro/internal/classlib"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/jvm"
	"repro/internal/mem"
	"repro/internal/simclock"
)

const (
	pg    = mem.DefaultPageSize
	scale = 64
)

func bootGuest(t *testing.T, seed mem.Seed) *guestos.Kernel {
	t.Helper()
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{Name: "t", RAMBytes: 96 << 20}, clock)
	vm := host.NewVM(hypervisor.VMConfig{Name: "vm", GuestMemBytes: 64 << 20, Seed: seed})
	return guestos.Boot(vm, guestos.KernelConfig{Version: "2.6.18", TextBytes: 1 << 20})
}

func TestSpecsEncodeTable3(t *testing.T) {
	dt := DayTrader()
	if dt.ClientThreads != 12 || dt.HeapBytes != 530<<20 || dt.CacheBytes != 120<<20 {
		t.Fatalf("DayTrader spec wrong: %+v", dt)
	}
	se := SPECjEnterprise()
	if se.InjectionRate != 15 || se.GCPolicy != jvm.GenCon || se.NurseryBytes != 530<<20 || se.TenuredBytes != 200<<20 {
		t.Fatalf("SPECjE spec wrong: %+v", se)
	}
	tw := TPCW()
	if tw.ClientThreads != 10 || tw.HeapBytes != 512<<20 {
		t.Fatalf("TPC-W spec wrong: %+v", tw)
	}
	tu := Tuscany()
	if tu.ClientThreads != 7 || tu.HeapBytes != 32<<20 || tu.CacheBytes != 25<<20 {
		t.Fatalf("Tuscany spec wrong: %+v", tu)
	}
	dp := DayTraderPOWER()
	if dp.ClientThreads != 25 || dp.HeapBytes != 1<<30 {
		t.Fatalf("DayTrader-POWER spec wrong: %+v", dp)
	}
	if len(AllSpecs()) != 5 {
		t.Fatal("AllSpecs incomplete")
	}
}

// quickSpec shrinks the deploy-time warmup for tests that don't need a
// steady-state heap.
func quickSpec(s Spec) Spec {
	s.WarmupRequests = 40
	return s
}

func TestDeployBaseline(t *testing.T) {
	k := bootGuest(t, 1)
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)
	in := Deploy(k, corpus, quickSpec(DayTrader()), DeployConfig{Scale: scale})
	ls := in.JVM.LoadStats()
	want := len(corpus.Stack(append(DayTrader().CacheAwareGroups, DayTrader().PrivateGroups...)...))
	if ls.ClassesLoaded != want {
		t.Fatalf("loaded %d classes, want %d", ls.ClassesLoaded, want)
	}
	if ls.ROMFromCache != 0 {
		t.Fatal("baseline deployment used a cache")
	}
	if in.JVM.JIT().Stats().MethodsCompiled == 0 {
		t.Fatal("JIT not warmed")
	}
	// JARs were scanned into the page cache.
	if k.Stats().PageCacheFills == 0 {
		t.Fatal("no JAR scanning")
	}
}

func TestDeployWithSharedCache(t *testing.T) {
	k := bootGuest(t, 1)
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)
	spec := quickSpec(DayTrader())
	img := BuildCache(corpus, spec, scale)
	k.FS().Install(&guestos.File{Path: "/opt/cache", Data: img.FileBytes(corpus)})
	in := Deploy(k, corpus, spec, DeployConfig{
		Scale: scale, SharedClasses: true, CacheImage: img, CachePath: "/opt/cache",
	})
	ls := in.JVM.LoadStats()
	if ls.ROMFromCache == 0 {
		t.Fatal("no classes from cache")
	}
	// EJB classes must stay private.
	nEJB := len(corpus.Group(classlib.GroupDayTraderEJB))
	if ls.ROMPrivate < nEJB {
		t.Fatalf("ROMPrivate = %d < %d EJB classes", ls.ROMPrivate, nEJB)
	}
	// Everything cacheable that fit is served from the cache.
	cacheable := len(corpus.Stack(spec.CacheAwareGroups...))
	if ls.ROMFromCache+len(img.Overflowed) < cacheable {
		t.Fatalf("cache hits %d + overflow %d < cacheable %d", ls.ROMFromCache, len(img.Overflowed), cacheable)
	}
}

func TestBuildCacheRespectsTable3Capacity(t *testing.T) {
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)
	img := BuildCache(corpus, DayTrader(), scale)
	if img.Capacity != (120<<20)/scale {
		t.Fatalf("capacity = %d", img.Capacity)
	}
	if img.UsedBytes() > img.Capacity {
		t.Fatal("over capacity")
	}
	tus := BuildCache(corpus, Tuscany(), scale)
	if tus.Capacity != (25<<20)/scale {
		t.Fatalf("tuscany capacity = %d", tus.Capacity)
	}
}

func TestIterateChurnsMemory(t *testing.T) {
	k := bootGuest(t, 1)
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)
	spec := quickSpec(DayTrader())
	in := Deploy(k, corpus, spec, DeployConfig{Scale: scale})
	before := in.JVM.Heap().Stats()
	in.RunSteadyState(500)
	after := in.JVM.Heap().Stats()
	if after.Allocations <= before.Allocations {
		t.Fatal("no heap allocations")
	}
	if after.MajorGCs == 0 && after.MinorGCs == 0 {
		t.Fatal("no GC during steady state")
	}
	if after.HeaderWrites == 0 {
		t.Fatal("no header mutations")
	}
	if want := uint64(500 + spec.WarmupRequests); in.Stats().Requests != want {
		t.Fatalf("requests = %d, want %d", in.Stats().Requests, want)
	}
	if in.JVM.Work().Stats().NIOWrites == 0 {
		t.Fatal("no NIO traffic")
	}
}

func TestSessionCapBoundsLiveSet(t *testing.T) {
	k := bootGuest(t, 1)
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)
	spec := quickSpec(Tuscany())
	in := Deploy(k, corpus, spec, DeployConfig{Scale: scale})
	in.RunSteadyState(in.sessionCap * spec.SessionEvery * 3)
	if got := len(in.sessions); got > in.sessionCap {
		t.Fatalf("sessions %d exceed cap %d", got, in.sessionCap)
	}
	if in.JVM.Heap().LiveObjects() == 0 {
		t.Fatal("no live objects")
	}
}

func TestJarsIdenticalAcrossGuests(t *testing.T) {
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)
	k1 := bootGuest(t, 1)
	k2 := bootGuest(t, 2)
	InstallJars(k1, corpus, DayTrader())
	InstallJars(k2, corpus, DayTrader())
	p := JarPath(classlib.GroupWASCore)
	f1 := k1.FS().MustLookup(p)
	f2 := k2.FS().MustLookup(p)
	if f1.SizeBytes != f2.SizeBytes || f1.ContentSeed != f2.ContentSeed {
		t.Fatal("JARs differ across guests built from the same base image")
	}
}

func TestDeployWarmupFillsHeap(t *testing.T) {
	k := bootGuest(t, 1)
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)
	in := Deploy(k, corpus, DayTrader(), DeployConfig{Scale: scale})
	// Warmup scales: calibrated at scale 16, so a scale-64 heap needs a
	// quarter of the requests to reach its high-water mark.
	want := uint64(DayTrader().WarmupRequests * warmupCalibScale / scale)
	if in.Stats().Requests != want {
		t.Fatalf("warmup requests = %d, want %d", in.Stats().Requests, want)
	}
	// The heap must have cycled at least once during scenario init.
	if in.JVM.Heap().Stats().MajorGCs == 0 {
		t.Fatal("warmup did not reach a GC")
	}
}

func TestOperationMixDrawsAllOps(t *testing.T) {
	k := bootGuest(t, 1)
	corpus := classlib.NewCorpus(jvm.RuntimeVersion, scale)
	spec := quickSpec(DayTrader())
	in := Deploy(k, corpus, spec, DeployConfig{Scale: scale})
	in.RunSteadyState(600)
	perOp := in.Stats().PerOp
	if len(perOp) != len(spec.Mix) {
		t.Fatalf("operations seen: %v, want all %d", perOp, len(spec.Mix))
	}
	var total uint64
	for _, n := range perOp {
		total += n
	}
	if total != in.Stats().Requests {
		t.Fatalf("per-op counts %d != requests %d", total, in.Stats().Requests)
	}
	// The heaviest-weighted op dominates.
	if perOp["quote"] < perOp["home"] {
		t.Fatalf("weights not respected: %v", perOp)
	}
}

func TestMixFactorsWeightBalanced(t *testing.T) {
	// The design contract: factors average ≈1.0 so mixes don't change the
	// aggregate allocation rate the calibration relies on.
	for _, s := range AllSpecs() {
		if len(s.Mix) == 0 {
			continue
		}
		var wSum, alloc, size, nio float64
		for _, op := range s.Mix {
			w := float64(op.Weight)
			wSum += w
			alloc += w * op.AllocFactor
			size += w * op.SizeFactor
			nio += w * op.NIOFactor
		}
		for name, v := range map[string]float64{"alloc": alloc / wSum, "size": size / wSum, "nio": nio / wSum} {
			if v < 0.85 || v > 1.15 {
				t.Fatalf("%s: %s factor mean %.2f not ≈1.0", s.Name, name, v)
			}
		}
	}
}

func TestSpecValidate(t *testing.T) {
	for _, s := range AllSpecs() {
		if err := s.Validate(); err != nil {
			t.Fatalf("shipped spec invalid: %v", err)
		}
	}
	bad := DayTrader()
	bad.HeapBytes = 0
	if bad.Validate() == nil {
		t.Fatal("zero heap accepted")
	}
	bad = SPECjEnterprise()
	bad.NurseryBytes = 0
	if bad.Validate() == nil {
		t.Fatal("gencon without nursery accepted")
	}
	bad = DayTrader()
	bad.HeapBytes = bad.GuestMemBytes * 2
	if bad.Validate() == nil {
		t.Fatal("heap larger than guest accepted")
	}
	bad = DayTrader()
	bad.Mix = []Operation{{Name: "x", Weight: 0, AllocFactor: 1, SizeFactor: 1}}
	if bad.Validate() == nil {
		t.Fatal("zero-weight op accepted")
	}
	bad = DayTrader()
	bad.Name = ""
	if bad.Validate() == nil {
		t.Fatal("nameless spec accepted")
	}
}
