package workload

import (
	"fmt"

	"repro/internal/cds"
	"repro/internal/classlib"
	"repro/internal/guestos"
	"repro/internal/jitshare"
	"repro/internal/jvm"
	"repro/internal/mem"
)

// DeployConfig controls how a workload instance is deployed into a guest.
type DeployConfig struct {
	// Scale divides every unscaled byte quantity.
	Scale int
	// SharedClasses enables the paper's technique: the JVM attaches the
	// shared class cache file (which Deploy expects at CachePath).
	SharedClasses bool
	// CacheImage/CachePath identify the pre-populated cache copied into
	// this guest's image; required when SharedClasses is set.
	CacheImage *cds.Image
	CachePath  string
	// PerVMNIOSalt, when nonzero, de-identifies the wire traffic per VM
	// (modelling real-world workloads rather than identical benchmark
	// drivers; the paper warns NIO sharing would not repeat in production).
	PerVMNIOSalt mem.Seed
	// Threads overrides the JVM worker thread count (defaults to
	// ClientThreads).
	Threads int
	// Sizes overrides the native-memory sizing (defaults to
	// SizesFor(spec, Scale)).
	Sizes *jvm.Sizes
	// DeferWarmup skips the deploy-time warmup burst; the caller drives it
	// later via Warmup, interleaved with hypervisor activity (the paper
	// runs the KSM scanner at full rate during startup and initialization).
	DeferWarmup bool
	// SharedAOT serves hot-method code from the cache's AOT section (the
	// extension; requires a cache built with BuildCacheAOT).
	SharedAOT bool
	// JITShare attaches a shared code archive so tier-1 JIT output is
	// position-independent and cross-process shareable (the ShareJIT
	// extension); requires JITArchive, built with BuildJITArchive.
	JITShare   bool
	JITArchive *jitshare.Archive
}

// Instance is one running workload (one WAS or Tuscany process in one
// guest VM).
type Instance struct {
	Spec    Spec
	JVM     *jvm.JVM
	kernel  *guestos.Kernel
	cfg     DeployConfig
	logPath string

	// sessionCap is the live-session bound, scaled with the heap: the
	// logical session objects are paper-sized, so a scale× smaller heap can
	// hold scale× fewer of them.
	sessionCap int

	step     int
	sessions []*jvm.Object
	rng      mem.Seed

	stats InstanceStats
}

// InstanceStats counts driver activity.
type InstanceStats struct {
	Requests     uint64
	LazyClasses  int
	BytesAlloced int64
	// PerOp counts requests by operation name (empty when the spec has no
	// mix).
	PerOp map[string]uint64
}

// JarPath names the guest file holding a group's class archive.
func JarPath(g classlib.Group) string {
	return fmt.Sprintf("/opt/middleware/lib/%s.jar", g)
}

// InstallJars puts the workload's class archives into a guest image. JAR
// bytes are generated from the group identity and corpus version, so every
// guest built from the same base image has identical archives — the source
// of the cross-VM page-cache sharing in the guest-kernel area.
func InstallJars(k *guestos.Kernel, corpus *classlib.Corpus, spec Spec) {
	for _, g := range append(append([]classlib.Group(nil), spec.CacheAwareGroups...), spec.PrivateGroups...) {
		path := JarPath(g)
		if _, ok := k.FS().Lookup(path); ok {
			continue
		}
		size := corpus.GroupROMBytes(g) // class files ≈ their ROM bytes
		k.FS().InstallGenerated(path, corpus.Version, size)
	}
}

// BuildCache performs the cold run of §4.C: it populates a cache image from
// the canonical load order of the workload's cache-aware stack. The
// resulting image (and its file bytes) is what the datacenter administrator
// stores into the base image and thereby copies to every VM.
func BuildCache(corpus *classlib.Corpus, spec Spec, scale int) *cds.Image {
	capacity := spec.CacheBytes / int64(scale)
	if capacity < 64<<10 {
		capacity = 64 << 10
	}
	return cds.Build(spec.CacheName, corpus.Version, capacity, corpus.Stack(spec.CacheAwareGroups...))
}

// HotPermille is the share of methods the JIT compiles as hot in steady
// state (the paper's WAS processes sit near 2 % of methods compiled). The
// deploy-time JITWarm and the jitshare archive layout must agree on it, or
// processes would compile methods the archive never laid out.
const HotPermille = 20

// jitArchiveBytes is the unscaled shared-code-archive capacity. Sized so the
// hot sets of the Table III workloads fit with a small realistic overflow.
const jitArchiveBytes = int64(64) << 20

// BuildJITArchive lays out the shared code archive for a workload: the
// canonical (unshuffled) class stack over every group the workload loads,
// hot methods at the same permille JITWarm compiles. Like the class cache,
// the layout derives only from the corpus — never from any process's load
// order — so every JVM agrees on which method body lives at which page.
func BuildJITArchive(corpus *classlib.Corpus, spec Spec, scale, pageSize int) *jitshare.Archive {
	capacity := jitArchiveBytes / int64(scale)
	if capacity < 128<<10 {
		capacity = 128 << 10
	}
	groups := append(append([]classlib.Group(nil), spec.CacheAwareGroups...), spec.PrivateGroups...)
	return jitshare.Build(spec.CacheName+"-code", corpus.Version, capacity, pageSize,
		corpus.Stack(groups...), HotPermille)
}

// BuildCacheAOT builds the cache like BuildCache and additionally populates
// its AOT section with the hot methods at hotPermille (the extension mode).
// The cache is grown by half: Table III's sizes fit the class metadata
// only, and production caches that also hold AOT code ship larger.
func BuildCacheAOT(corpus *classlib.Corpus, spec Spec, scale, hotPermille int) *cds.Image {
	grown := spec
	grown.CacheBytes = spec.CacheBytes * 3 / 2
	img := BuildCache(corpus, grown, scale)
	img.PopulateAOT(corpus.Stack(spec.CacheAwareGroups...), hotPermille)
	return img
}

// Deploy starts the workload in a guest: installs and scans the JARs,
// launches the JVM (attaching the shared cache when configured), loads the
// class stack and warms the JIT — the paper's "first three minutes after
// starting up WAS and initializing by accessing the scenario page".
func Deploy(k *guestos.Kernel, corpus *classlib.Corpus, spec Spec, cfg DeployConfig) *Instance {
	if cfg.Scale < 1 {
		panic(fmt.Sprintf("workload: scale %d", cfg.Scale))
	}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	InstallJars(k, corpus, spec)
	// WAS scans every archive at startup (annotation and module scanning),
	// warming the page cache whether or not classes later come from the
	// shared cache.
	for _, g := range spec.CacheAwareGroups {
		k.ReadFileAll(JarPath(g))
	}
	for _, g := range spec.PrivateGroups {
		k.ReadFileAll(JarPath(g))
	}

	threads := cfg.Threads
	if threads == 0 {
		threads = spec.ClientThreads
	}
	opts := jvm.Options{
		GCPolicy:     spec.GCPolicy,
		HeapBytes:    spec.HeapBytes / int64(cfg.Scale),
		NurseryBytes: spec.NurseryBytes / int64(cfg.Scale),
		TenuredBytes: spec.TenuredBytes / int64(cfg.Scale),
		Threads:      threads,
	}
	if cfg.SharedClasses {
		if cfg.CacheImage == nil || cfg.CachePath == "" {
			panic("workload: SharedClasses without cache image/path")
		}
		// Guard the copy-the-file step: the guest's file must be this
		// cache's serialization.
		if f, ok := k.FS().Lookup(cfg.CachePath); ok && f.Data != nil {
			if err := cfg.CacheImage.VerifyFile(f.Data); err != nil {
				panic(err)
			}
		}
		opts.SharedClasses = true
		opts.SharedAOT = cfg.SharedAOT
		opts.CacheImage = cfg.CacheImage
		opts.CachePath = cfg.CachePath
	}
	if cfg.JITShare {
		if cfg.JITArchive == nil {
			panic("workload: JITShare without archive")
		}
		opts.JITShare = true
		opts.JITArchive = cfg.JITArchive
	}

	sizes := SizesFor(spec, cfg.Scale)
	if cfg.Sizes != nil {
		sizes = *cfg.Sizes
	}
	procName := "java-" + spec.Middleware
	j := jvm.Launch(k, procName, corpus, opts, sizes)
	j.LoadGroups(true, spec.CacheAwareGroups...)
	if len(spec.PrivateGroups) > 0 {
		j.LoadGroups(false, spec.PrivateGroups...)
	}
	j.JITWarm(HotPermille) // ≈2 % of methods hot in steady state

	logPath := fmt.Sprintf("/opt/middleware/logs/%s-pid%d/SystemOut.log", spec.Middleware, j.Process().PID)
	k.FS().Install(&guestos.File{Path: logPath, SizeBytes: 0, ContentSeed: j.Process().Seed()})
	sessionCap := spec.SessionCap * warmupCalibScale / cfg.Scale
	if sessionCap < 20 {
		sessionCap = 20
	}
	in := &Instance{
		Spec:       spec,
		JVM:        j,
		kernel:     k,
		cfg:        cfg,
		logPath:    logPath,
		sessionCap: sessionCap,
		rng:        mem.Combine(j.Process().Seed(), mem.HashString("driver")),
	}
	// Scenario initialization: drive the app until the heap reaches its
	// steady-state high-water mark.
	if !cfg.DeferWarmup {
		in.Warmup()
	}
	return in
}

// warmupCalibScale is the memory scale WarmupRequests is calibrated at.
// Request working sets are paper-sized at every scale, so a heap that is
// scale× smaller reaches its steady-state high-water mark in scale× fewer
// requests; Warmup compensates so steady state is reached at any scale.
const warmupCalibScale = 16

// WarmupTarget reports the scale-adjusted scenario-initialization request
// count.
func (in *Instance) WarmupTarget() int {
	n := in.Spec.WarmupRequests * warmupCalibScale / in.cfg.Scale
	if n < 40 {
		n = 40
	}
	return n
}

// Warmup serves the scenario-initialization requests (deferred mode).
func (in *Instance) Warmup() {
	in.RunSteadyState(in.WarmupTarget())
}

// pickOperation draws a request type from the spec's weighted mix.
func (in *Instance) pickOperation() *Operation {
	if len(in.Spec.Mix) == 0 {
		return nil
	}
	total := 0
	for i := range in.Spec.Mix {
		total += in.Spec.Mix[i].Weight
	}
	in.rng = mem.Mix(in.rng)
	pick := int(uint64(in.rng) % uint64(total))
	for i := range in.Spec.Mix {
		pick -= in.Spec.Mix[i].Weight
		if pick < 0 {
			return &in.Spec.Mix[i]
		}
	}
	return &in.Spec.Mix[len(in.Spec.Mix)-1]
}

// Iterate executes one request batch: the per-request memory behaviour of
// the benchmark against this instance.
func (in *Instance) Iterate() {
	in.step++
	in.stats.Requests++
	h := in.JVM.Heap()

	op := in.pickOperation()
	allocs, meanSize, nioBytes := in.Spec.RequestAllocs, in.Spec.RequestAllocBytes, in.Spec.NIOBytesPerReq
	sessionOp := false
	if op != nil {
		if in.stats.PerOp == nil {
			in.stats.PerOp = make(map[string]uint64)
		}
		in.stats.PerOp[op.Name]++
		allocs = int(float64(allocs)*op.AllocFactor + 0.5)
		meanSize = int(float64(meanSize)*op.SizeFactor + 0.5)
		nioBytes = int(float64(nioBytes)*op.NIOFactor + 0.5)
		sessionOp = op.Session
	}

	// Transaction working set: mostly short-lived objects.
	for i := 0; i < allocs; i++ {
		in.rng = mem.Mix(in.rng)
		size := meanSize/2 + int(uint64(in.rng)%uint64(meanSize))
		h.Alloc(size, in.rng, false)
		in.stats.BytesAlloced += int64(size)
	}

	// Session state: long-lived, capped, oldest released (models HTTP
	// session expiry and entity caches). Session-bearing operations and the
	// periodic fallback both create it.
	if sessionOp || (in.Spec.SessionEvery > 0 && in.step%in.Spec.SessionEvery == 0) {
		in.rng = mem.Mix(in.rng)
		o := h.Alloc(in.Spec.SessionBytes, in.rng, true)
		in.sessions = append(in.sessions, o)
		if len(in.sessions) > in.sessionCap {
			h.Release(in.sessions[0])
			in.sessions = in.sessions[1:]
		}
		// Monitor operations on live session objects dirty their headers.
		h.Mutate(in.sessions[len(in.sessions)/2])
	}

	// Wire traffic: the same benchmark sends the same bytes in every VM.
	if nioBytes > 0 {
		in.JVM.Work().NIOTransfer(in.Spec.Name, in.step, nioBytes, in.cfg.PerVMNIOSalt)
	}

	// Native-side churn: parsing buffers, JNI handles.
	if in.step%8 == 0 {
		in.JVM.Work().Malloc(2048 + int(uint64(in.rng)%4096))
	}

	// Executing the request reads class metadata and compiled code and
	// touches the runtime's native tables: the whole JVM working set is hot
	// in steady state, which is what makes over-commitment expensive.
	in.JVM.TouchMetadata(in.step, 24)
	in.JVM.TouchJITCode(in.step, 8)
	in.JVM.Work().TouchNative(in.step, 32<<10)

	// Thread stacks stay hot.
	in.JVM.StackChurn(in.step)

	// Occasional late class loading (reflection proxies, lazy servlets).
	if in.step%97 == 0 {
		in.lazyLoad()
	}

	// The server logs continuously: dirty, per-VM page cache that no TPS
	// can ever merge (and which keeps the guest kernel area realistic).
	if in.step%16 == 0 {
		in.kernel.AppendFile(in.logPath, 512+int(uint64(in.rng)%1024), in.JVM.Process().Seed())
	}
}

// lazyLoad loads one not-yet-loaded class from the app groups, if any.
func (in *Instance) lazyLoad() {
	in.stats.LazyClasses++
	// All groups were loaded at deploy; model the late work as metadata
	// resolution instead: a RAM-side native allocation.
	in.JVM.Work().Malloc(4096)
}

// RunSteadyState executes n request batches back to back (the driver's
// think time is folded into the experiment clock by the caller).
func (in *Instance) RunSteadyState(n int) {
	for i := 0; i < n; i++ {
		in.Iterate()
	}
}

// Stats returns driver counters.
func (in *Instance) Stats() InstanceStats { return in.stats }

// Kernel returns the guest kernel this instance runs on.
func (in *Instance) Kernel() *guestos.Kernel { return in.kernel }
