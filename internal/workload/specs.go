// Package workload implements the paper's four benchmark workloads
// (Table III): Apache DayTrader 2.0, SPECjEnterprise 2010, TPC-W (Java
// implementation), and the Apache Tuscany bigbank demo — as drivers that
// exercise a simulated JVM the way the real benchmarks exercise a real one:
// a middleware startup phase that scans JARs and loads the class stack, a
// scenario-initialization phase that warms the JIT, and a steady-state
// request loop that churns the heap, mutates object headers, transfers NIO
// payloads and keeps stacks volatile.
package workload

import (
	"fmt"

	"repro/internal/classlib"
	"repro/internal/jvm"
)

// Spec is one workload configuration, unscaled (paper units); Deploy divides
// by the experiment's memory scale.
type Spec struct {
	Name string
	// Middleware is the application server hosting the app ("WAS" or
	// "Tuscany") — it determines the class stack and the JAR set.
	Middleware string

	// GuestMemBytes is the guest VM memory from Table II: 1.00 GB for
	// DayTrader, TPC-W and Tuscany; 1.25 GB for SPECjEnterprise 2010;
	// 3.5 GB for the POWER guests.
	GuestMemBytes int64

	// Cache configuration (Table III "shared class cache size").
	CacheName  string
	CacheBytes int64

	// Heap configuration.
	GCPolicy     jvm.GCPolicy
	HeapBytes    int64
	NurseryBytes int64
	TenuredBytes int64

	// ClientThreads is the per-VM driver thread count.
	ClientThreads int
	// InjectionRate is the SPECjEnterprise driver rate (0 for the others).
	InjectionRate int

	// CacheAwareGroups load through loaders that can use the shared cache.
	CacheAwareGroups []classlib.Group
	// PrivateGroups load through loaders that cannot (the EJB application
	// loaders in the measured J9 implementation).
	PrivateGroups []classlib.Group

	// Steady-state request shape.
	RequestAllocs     int // objects allocated per request (baseline op)
	RequestAllocBytes int // mean object size
	SessionEvery      int // every Nth request creates a long-lived session object
	SessionBytes      int // session object size
	SessionCap        int // live sessions before the oldest is released
	NIOBytesPerReq    int // wire bytes moved per request (baseline op)

	// Mix is the benchmark's operation mix; requests draw an operation by
	// weight and scale the baseline allocation/transfer shape by its
	// factors. Factors are weight-balanced around 1.0 so a mix refines the
	// request distribution without changing the aggregate memory rates.
	Mix []Operation

	// WarmupRequests is served at deploy time (the paper's scenario
	// initialization), bringing the heap to its steady-state high-water
	// mark before measurement.
	WarmupRequests int

	// BaseRequestsPerSec is the per-VM throughput when memory is
	// plentiful; the Fig. 7/8 performance model degrades it with the
	// measured major-fault rate.
	BaseRequestsPerSec float64
}

// Operation is one request type of a benchmark's scenario mix.
type Operation struct {
	Name   string
	Weight int
	// AllocFactor scales the number of objects the operation allocates;
	// SizeFactor scales their mean size; NIOFactor scales the wire bytes.
	AllocFactor float64
	SizeFactor  float64
	NIOFactor   float64
	// Session marks operations that create long-lived session state (login,
	// order placement) rather than only transient objects.
	Session bool
}

// wasGroups is the middleware stack of a WAS-hosted workload.
func wasGroups() []classlib.Group {
	return []classlib.Group{classlib.GroupJDK, classlib.GroupOSGi, classlib.GroupWASCore, classlib.GroupDerby}
}

// DayTrader returns the Table III DayTrader 2.0 configuration for the Intel
// platform: 12 client threads, 530 MB flat heap, 120 MB cache.
func DayTrader() Spec {
	return Spec{
		Name:              "DayTrader",
		WarmupRequests:    900,
		Middleware:        "WAS",
		GuestMemBytes:     1 << 30,
		CacheName:         "webspherev70",
		CacheBytes:        120 << 20,
		GCPolicy:          jvm.OptThruput,
		HeapBytes:         530 << 20,
		ClientThreads:     12,
		CacheAwareGroups:  append(wasGroups(), classlib.GroupDayTrader),
		PrivateGroups:     []classlib.Group{classlib.GroupDayTraderEJB},
		RequestAllocs:     24,
		RequestAllocBytes: 2048,
		SessionEvery:      4,
		SessionBytes:      8192,
		SessionCap:        600,
		NIOBytesPerReq:    24 << 10,
		Mix: []Operation{
			{Name: "quote", Weight: 40, AllocFactor: 0.6, SizeFactor: 0.8, NIOFactor: 0.7},
			{Name: "portfolio", Weight: 20, AllocFactor: 1.5, SizeFactor: 1.1, NIOFactor: 1.6},
			{Name: "buy", Weight: 15, AllocFactor: 1.2, SizeFactor: 1.2, NIOFactor: 0.9, Session: true},
			{Name: "sell", Weight: 15, AllocFactor: 1.2, SizeFactor: 1.2, NIOFactor: 0.9, Session: true},
			{Name: "home", Weight: 10, AllocFactor: 1.0, SizeFactor: 0.9, NIOFactor: 1.5},
		},
		BaseRequestsPerSec: 19.0,
	}
}

// DayTraderPOWER is the POWER-platform variant: 25 client threads, 1 GB
// heap, 120 MB cache (Table III rightmost column).
func DayTraderPOWER() Spec {
	s := DayTrader()
	s.Name = "DayTrader-POWER"
	s.GuestMemBytes = 3584 << 20
	s.HeapBytes = 1 << 30
	s.ClientThreads = 25
	s.BaseRequestsPerSec = 40.0
	return s
}

// SPECjEnterprise returns the SPECjEnterprise 2010 configuration:
// injection rate 15, 730 MB heap (Fig. 8 uses gencon with a 530 MB nursery
// and 200 MB tenured area), 120 MB cache.
func SPECjEnterprise() Spec {
	return Spec{
		Name:              "SPECjEnterprise",
		WarmupRequests:    800,
		Middleware:        "WAS",
		GuestMemBytes:     1280 << 20,
		CacheName:         "webspherev70",
		CacheBytes:        120 << 20,
		GCPolicy:          jvm.GenCon,
		HeapBytes:         730 << 20,
		NurseryBytes:      530 << 20,
		TenuredBytes:      200 << 20,
		InjectionRate:     15,
		ClientThreads:     15,
		CacheAwareGroups:  append(wasGroups(), classlib.GroupSPECjE),
		PrivateGroups:     []classlib.Group{classlib.GroupSPECjEEJB},
		RequestAllocs:     32,
		RequestAllocBytes: 2560,
		SessionEvery:      3,
		SessionBytes:      12288,
		SessionCap:        800,
		NIOBytesPerReq:    32 << 10,
		Mix: []Operation{
			{Name: "browse", Weight: 25, AllocFactor: 0.7, SizeFactor: 0.9, NIOFactor: 1.2},
			{Name: "manage", Weight: 25, AllocFactor: 1.1, SizeFactor: 1.0, NIOFactor: 0.8},
			{Name: "purchase", Weight: 25, AllocFactor: 1.2, SizeFactor: 1.1, NIOFactor: 0.9, Session: true},
			{Name: "workorder", Weight: 25, AllocFactor: 1.0, SizeFactor: 1.0, NIOFactor: 1.1},
		},
		BaseRequestsPerSec: 24.0, // EjOPS at injection rate 15
	}
}

// TPCW returns the TPC-W Java-implementation configuration: 10 client
// threads, 512 MB heap, 120 MB cache.
func TPCW() Spec {
	return Spec{
		Name:              "TPC-W",
		WarmupRequests:    700,
		Middleware:        "WAS",
		GuestMemBytes:     1 << 30,
		CacheName:         "webspherev70",
		CacheBytes:        120 << 20,
		GCPolicy:          jvm.OptThruput,
		HeapBytes:         512 << 20,
		ClientThreads:     10,
		CacheAwareGroups:  append(wasGroups(), classlib.GroupTPCW),
		RequestAllocs:     20,
		RequestAllocBytes: 1792,
		SessionEvery:      5,
		SessionBytes:      6144,
		SessionCap:        500,
		NIOBytesPerReq:    20 << 10,
		Mix: []Operation{
			{Name: "browse", Weight: 50, AllocFactor: 0.8, SizeFactor: 0.9, NIOFactor: 1.2},
			{Name: "search", Weight: 20, AllocFactor: 1.4, SizeFactor: 1.0, NIOFactor: 1.1},
			{Name: "cart", Weight: 20, AllocFactor: 1.1, SizeFactor: 1.2, NIOFactor: 0.7, Session: true},
			{Name: "checkout", Weight: 10, AllocFactor: 1.4, SizeFactor: 1.1, NIOFactor: 0.6, Session: true},
		},
		BaseRequestsPerSec: 17.0,
	}
}

// Tuscany returns the Apache Tuscany bigbank demo configuration: 7 client
// threads, 32 MB heap, 25 MB cache — the small non-WAS middleware of
// Fig. 3(c)/5(c).
func Tuscany() Spec {
	return Spec{
		Name:              "Tuscany-bigbank",
		WarmupRequests:    300,
		Middleware:        "Tuscany",
		GuestMemBytes:     1 << 30,
		CacheName:         "tuscany",
		CacheBytes:        25 << 20,
		GCPolicy:          jvm.OptThruput,
		HeapBytes:         32 << 20,
		ClientThreads:     7,
		CacheAwareGroups:  []classlib.Group{classlib.GroupJDKCore, classlib.GroupTuscany, classlib.GroupBigBank},
		RequestAllocs:     10,
		RequestAllocBytes: 1024,
		SessionEvery:      6,
		SessionBytes:      4096,
		SessionCap:        120,
		NIOBytesPerReq:    8 << 10,
		Mix: []Operation{
			{Name: "balance", Weight: 60, AllocFactor: 0.8, SizeFactor: 0.9, NIOFactor: 1.0},
			{Name: "statement", Weight: 25, AllocFactor: 1.3, SizeFactor: 1.2, NIOFactor: 1.1, Session: true},
			{Name: "exchange", Weight: 15, AllocFactor: 1.3, SizeFactor: 1.0, NIOFactor: 0.8},
		},
		BaseRequestsPerSec: 11.0,
	}
}

// AllSpecs lists every workload for table rendering.
func AllSpecs() []Spec {
	return []Spec{DayTrader(), SPECjEnterprise(), TPCW(), Tuscany(), DayTraderPOWER()}
}

// SizesFor returns the native-memory sizing for a workload's middleware at
// the given scale: the full WAS profile, or a slimmer one for Tuscany,
// whose Fig. 3(c) footprint is an order of magnitude smaller.
func SizesFor(spec Spec, scale int) jvm.Sizes {
	s := jvm.DefaultSizes(scale)
	if spec.Middleware == "Tuscany" {
		div := func(v int64) int64 {
			v /= int64(scale)
			if v < 4096 {
				v = 4096
			}
			return v
		}
		s.MiddlewareLibsBytes = div(4 << 20)
		s.JVMLibsBytes = div(16 << 20)
		s.LibDataBytes = div(2 << 20)
		s.MallocStartupBytes = div(10 << 20)
		s.BulkReserveBytes = div(2 << 20)
		s.NIOPoolBytes = div(3 << 20)
	}
	return s
}

// Validate checks a spec for the configuration mistakes that would
// otherwise surface as panics deep inside a run.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: spec has no name")
	case s.GuestMemBytes <= 0:
		return fmt.Errorf("workload %s: GuestMemBytes not set", s.Name)
	case s.GCPolicy == jvm.GenCon && (s.NurseryBytes <= 0 || s.TenuredBytes <= 0):
		return fmt.Errorf("workload %s: gencon needs NurseryBytes and TenuredBytes", s.Name)
	case s.GCPolicy == jvm.OptThruput && s.HeapBytes <= 0:
		return fmt.Errorf("workload %s: optthruput needs HeapBytes", s.Name)
	case len(s.CacheAwareGroups) == 0:
		return fmt.Errorf("workload %s: no classes to load", s.Name)
	case s.CacheBytes <= 0:
		return fmt.Errorf("workload %s: CacheBytes not set", s.Name)
	case s.ClientThreads <= 0:
		return fmt.Errorf("workload %s: ClientThreads not set", s.Name)
	case s.BaseRequestsPerSec <= 0:
		return fmt.Errorf("workload %s: BaseRequestsPerSec not set", s.Name)
	}
	heap := s.HeapBytes
	if s.GCPolicy == jvm.GenCon {
		heap = s.NurseryBytes + s.TenuredBytes
	}
	if heap >= s.GuestMemBytes {
		return fmt.Errorf("workload %s: heap %d does not fit guest memory %d", s.Name, heap, s.GuestMemBytes)
	}
	for _, op := range s.Mix {
		if op.Weight <= 0 || op.AllocFactor <= 0 || op.SizeFactor <= 0 {
			return fmt.Errorf("workload %s: malformed operation %q", s.Name, op.Name)
		}
	}
	return nil
}
