package tpsim_test

import (
	"fmt"
	"os"

	tpsim "repro"
)

// Reproduce the paper's headline experiment: Fig. 4 / Fig. 5(a), the
// 4×DayTrader cluster with one shared class cache file copied into every
// guest image.
func Example_headline() {
	memFig, javaFig := tpsim.Fig4(tpsim.Options{Quick: true})
	fmt.Print(tpsim.RenderMemFigure(memFig))
	fmt.Print(tpsim.RenderJavaFigure(javaFig))
}

// Compose a custom scenario: six TPC-W guests with the technique enabled,
// then apply the paper's owner-oriented measurement methodology.
func Example_customScenario() {
	c := tpsim.BuildCluster(tpsim.ClusterConfig{
		Specs:         []tpsim.WorkloadSpec{tpsim.TPCW()},
		NumVMs:        6,
		SharedClasses: true,
	})
	c.Run()

	a := c.Analyze()
	for _, vm := range a.VMBreakdowns() {
		fmt.Printf("%s: %d bytes used, %d bytes saved by TPS\n",
			vm.VMName, vm.Total(), vm.SavingsBytes)
	}

	perf := c.MeasurePerf(20)
	fmt.Printf("aggregate throughput: %.1f req/s\n", tpsim.Aggregate(perf))
}

// Capture a system dump (the paper's §2.B collection step) and analyze it
// offline — for example on a different machine.
func Example_dumpWorkflow() {
	c := tpsim.BuildCluster(tpsim.ClusterConfig{
		Specs:  []tpsim.WorkloadSpec{tpsim.DayTrader()},
		NumVMs: 2,
	})
	c.Run()

	f, _ := os.Create("cluster.dump")
	_ = tpsim.CaptureDump(c).Write(f)
	f.Close()

	g, _ := os.Open("cluster.dump")
	d, _ := tpsim.ReadDump(g)
	g.Close()
	fmt.Printf("offline attribution: %d bytes\n", tpsim.AnalyzeDump(d).TotalGuestBytes())
}

// Evaluate Memory-Buddies-style colocation against round-robin placement.
func Example_placement() {
	specs := []tpsim.WorkloadSpec{tpsim.DayTrader(), tpsim.DayTrader(), tpsim.Tuscany(), tpsim.Tuscany()}
	reqs := make([]tpsim.PlacementRequest, len(specs))
	for i, s := range specs {
		reqs[i] = tpsim.PlacementRequest{
			Spec:        s,
			Fingerprint: tpsim.FingerprintWorkload(s, false, tpsim.DefaultScale, 0),
		}
	}
	smart := tpsim.EvaluatePlacement(reqs, tpsim.PlaceBySimilarity(reqs, 2, 2), false, tpsim.DefaultScale, 0)
	naive := tpsim.EvaluatePlacement(reqs, tpsim.PlaceRoundRobin(len(reqs), 2), false, tpsim.DefaultScale, 0)
	fmt.Printf("smart placement saves %.0f MB, round-robin %.0f MB\n",
		smart.TotalSavedMB, naive.TotalSavedMB)
}
