// Package tpsim reproduces "Increasing the Transparent Page Sharing in
// Java" (Ogata & Onodera, ISPASS 2013) as a deterministic simulation: a
// KVM-style host with KSM, guest Linux kernels, a J9-style JVM memory model
// with a shared class cache, the paper's four workloads, and the
// measurement methodology that attributes every host physical page frame.
//
// The package is a facade over the internal packages; it exposes everything
// needed to re-run the paper's experiments or to compose new scenarios:
//
//	fig, java := tpsim.Fig4(tpsim.Options{})   // the headline result
//	fmt.Print(tpsim.RenderMemFigure(fig))
//	fmt.Print(tpsim.RenderJavaFigure(java))
//
// or, for a custom scenario:
//
//	c := tpsim.BuildCluster(tpsim.ClusterConfig{
//	    Specs:         []tpsim.WorkloadSpec{tpsim.DayTrader()},
//	    NumVMs:        6,
//	    SharedClasses: true,
//	})
//	c.Run()
//	a := c.Analyze()
//
// All byte quantities in results are scaled back to paper units (see
// DESIGN.md on the memory scale). Every run is deterministic given
// Options.Seed.
package tpsim

import (
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/thp"
	"repro/internal/workload"
)

// Options tunes an experiment run. The zero value reproduces the paper's
// configuration at the default 1/16 memory scale.
type Options = core.Options

// Seed is the deterministic randomization seed type.
type Seed = mem.Seed

// Experiment results.
type (
	// MemFigure is a per-VM physical memory breakdown (Fig. 2 / Fig. 4).
	MemFigure = core.MemFigure
	// JavaFigure is a per-JVM Table IV category breakdown (Fig. 3 / Fig. 5).
	JavaFigure = core.JavaFigure
	// SweepFigure is a VM-count throughput sweep (Fig. 7 / Fig. 8).
	SweepFigure = core.SweepFigure
	// PowerFigure is the PowerVM before/after comparison (Fig. 6).
	PowerFigure = core.PowerFigure
	// VMPerf is one guest's modelled steady-state performance.
	VMPerf = core.VMPerf
	// THPFigure is the THP-policy × guest-count tradeoff sweep.
	THPFigure = core.THPFigure
	// THPRow is one cell of a THPFigure.
	THPRow = core.THPRow
)

// Cluster scenario composition.
type (
	// ClusterConfig describes a custom KVM scenario.
	ClusterConfig = core.ClusterConfig
	// Cluster is a running scenario.
	Cluster = core.Cluster
	// WorkloadSpec is one benchmark configuration (Table III).
	WorkloadSpec = workload.Spec
	// Table is a renderable result table.
	Table = report.Table
)

// Paper experiments. Each function runs the corresponding figure's scenario
// end to end and returns paper-unit results.
var (
	// Fig2 runs the baseline 4×DayTrader breakdown; it returns the Fig. 2
	// VM-level figure and the Fig. 3(a) Java-level figure from the same run.
	Fig2 = core.Fig2
	// Fig3b is the DayTrader/SPECjEnterprise/TPC-W baseline breakdown.
	Fig3b = core.Fig3b
	// Fig3c is the 3×Tuscany baseline breakdown.
	Fig3c = core.Fig3c
	// Fig4 is Fig2's scenario with the shared class cache copied to every
	// VM; it returns Fig. 4 and Fig. 5(a).
	Fig4 = core.Fig4
	// Fig5b is Fig3b with per-application shared caches.
	Fig5b = core.Fig5b
	// Fig5c is Fig3c with the 25 MB Tuscany cache.
	Fig5c = core.Fig5c
	// Fig6 is the PowerVM experiment.
	Fig6 = core.Fig6
	// Fig7 sweeps DayTrader over 1-9 guest VMs.
	Fig7 = core.Fig7
	// Fig8 sweeps SPECjEnterprise 2010 over 5-8 guest VMs.
	Fig8 = core.Fig8
	// THPTradeoff sweeps huge-page policy against KSM sharing (extension).
	THPTradeoff = core.THPTradeoff

	// Table1 through Table4 render the paper's configuration tables.
	Table1 = core.Table1
	Table2 = core.Table2
	Table3 = core.Table3
	Table4 = core.Table4
)

// Workload constructors (Table III).
var (
	DayTrader       = workload.DayTrader
	DayTraderPOWER  = workload.DayTraderPOWER
	SPECjEnterprise = workload.SPECjEnterprise
	TPCW            = workload.TPCW
	Tuscany         = workload.Tuscany
)

// Scenario composition and measurement.
var (
	// BuildCluster assembles a custom scenario (guests deploy with the
	// scanner already running, as in the paper).
	BuildCluster = core.BuildCluster
	// Aggregate sums per-VM throughput; MeanScore averages it;
	// AnySLAViolated reports response-time SLA misses.
	Aggregate      = core.Aggregate
	MeanScore      = core.MeanScore
	AnySLAViolated = core.AnySLAViolated
)

// Renderers for paper-style text reports.
var (
	RenderMemFigure   = core.RenderMemFigure
	RenderJavaFigure  = core.RenderJavaFigure
	RenderSweepFigure = core.RenderSweepFigure
	RenderPowerFigure = core.RenderPowerFigure
	RenderTHPFigure   = core.RenderTHPFigure
)

// Transparent huge pages. THPPolicy selects the khugepaged collapse policy
// on ClusterConfig.THPPolicy / Options.THPPolicy; the zero value (never)
// keeps the subsystem off and every figure byte-identical to prior releases.
type THPPolicy = thp.Policy

// THP policy values and parsing (sysfs spellings: never|madvise|always).
const (
	THPNever   = thp.PolicyNever
	THPMadvise = thp.PolicyMadvise
	THPAlways  = thp.PolicyAlways
)

// ParseTHPPolicy converts a sysfs spelling into a THPPolicy.
var ParseTHPPolicy = thp.ParsePolicy

// Telemetry: time-series sampling of a running cluster. Enable with
// ClusterConfig.EnableMetrics (or Options.Telemetry for the paper
// experiments); the registry on Cluster.Metrics holds one ring-buffer
// series per gauge. Sampling is read-only and clock-driven, so results are
// bit-identical with it on or off.
type (
	// Metrics is a cluster's telemetry registry (Cluster.Metrics).
	Metrics = metrics.Registry
	// MetricsConfig tunes sampling cadence and series capacity.
	MetricsConfig = metrics.Config
	// Series is one bounded time series of samples.
	Series = metrics.Series
	// Sample is one (virtual time, value) observation.
	Sample = metrics.Sample
	// ConvergenceConfig tunes the flat-window convergence detector used by
	// Cluster.WaitConverged and ClusterConfig.AdaptiveWarmup.
	ConvergenceConfig = metrics.ConvergenceConfig
	// Telemetry collects the registries of fanned-out experiment runs in
	// submission order for post-run rendering.
	Telemetry = core.Telemetry
	// TelemetryEntry is one collected run inside a Telemetry.
	TelemetryEntry = core.TelemetryEntry
)

// Telemetry helpers.
var (
	// NewTelemetry creates an empty cross-run collector (Options.Telemetry).
	NewTelemetry = core.NewTelemetry
	// RenderTimeline renders one registry as an ASCII sparkline timeline.
	RenderTimeline = core.RenderTimeline
)

// DefaultScale is the default memory scale (all results are scaled back to
// paper units automatically).
const DefaultScale = core.DefaultScale

// Parallel experiment execution. Every Cluster owns its own clock and
// physical memory, so independent scenario runs fan out across a bounded
// worker pool; results come back in submission order, keeping rendered
// output identical to a sequential run. Options.Jobs routes the paper
// experiments (sweep points, error-bar repetitions, claim checks) through
// the same pool.
type (
	// Runner is a bounded worker pool for independent cluster runs.
	Runner = core.Runner
	// JobEvent reports job start/completion to a Runner progress callback.
	JobEvent = core.JobEvent
)

// NewRunner creates a runner with the given pool width (0 = GOMAXPROCS).
var NewRunner = core.NewRunner

// Job is one labelled unit of independent work for RunAll.
type Job[T any] struct {
	Label string
	Run   func() T
}

// RunAll executes jobs on the runner's pool and returns results in
// submission order. (A standalone generic helper: Go cannot alias the
// generic core type, so the facade converts.)
func RunAll[T any](r *Runner, jobs []Job[T]) []T {
	cj := make([]core.Job[T], len(jobs))
	for i, j := range jobs {
		cj[i] = core.Job[T]{Label: j.Label, Run: j.Run}
	}
	return core.RunAll(r, cj)
}
