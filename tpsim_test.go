package tpsim

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/mem"
)

// bytesReader adapts a byte slice for ReadDump.
func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// The facade tests exercise the public API surface end to end at a small
// scale; the deep behavioural tests live with the internal packages.

func TestPublicAPISmallCluster(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale:         64,
		Specs:         []WorkloadSpec{Tuscany()},
		NumVMs:        2,
		SharedClasses: true,
		SteadyRounds:  10,
	})
	c.Run()
	a := c.Analyze()
	if a.TotalGuestBytes() == 0 {
		t.Fatal("no memory attributed")
	}
	if len(a.VMBreakdowns()) != 2 || len(a.JavaBreakdowns()) != 2 {
		t.Fatal("breakdown cardinality wrong")
	}
	perf := c.MeasurePerf(5)
	if len(perf) != 2 || Aggregate(perf) <= 0 {
		t.Fatalf("perf = %+v", perf)
	}
	if MeanScore(perf) <= 0 {
		t.Fatal("mean score zero")
	}
}

func TestPublicTablesAndSpecs(t *testing.T) {
	if !strings.Contains(Table3().String(), "Injection rate of 15") {
		t.Fatal("Table3 wrong")
	}
	for _, s := range []WorkloadSpec{DayTrader(), DayTraderPOWER(), SPECjEnterprise(), TPCW(), Tuscany()} {
		if s.Name == "" || s.GuestMemBytes == 0 || s.HeapBytes == 0 {
			t.Fatalf("bad spec %+v", s)
		}
	}
	if DefaultScale != 16 {
		t.Fatalf("DefaultScale = %d", DefaultScale)
	}
}

func TestPublicBaselines(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale:         64,
		Specs:         []WorkloadSpec{Tuscany()},
		NumVMs:        2,
		SharedClasses: true,
		DisableKSM:    true,
		SteadyRounds:  5,
	})
	c.Run()
	de := DiffEngineAnalyze(c, DefaultDiffEngineConfig())
	if de.ScannedPages == 0 {
		t.Fatal("diffengine scanned nothing")
	}
	if de.IdenticalBytes == 0 {
		t.Fatal("diffengine found no identical pages on an unmerged 2-guest state")
	}
	mgr := NewBalloonManager(c, BalloonConfig{
		LowWatermarkBytes: c.Host.FreeBytes() + 1,
		TargetFreeBytes:   c.Host.FreeBytes() + 1<<20,
	})
	if mgr.Balance() == 0 {
		t.Fatal("balloon reclaimed nothing under forced pressure")
	}
}

func TestPublicDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		c := BuildCluster(ClusterConfig{
			Scale:         64,
			Specs:         []WorkloadSpec{Tuscany()},
			NumVMs:        2,
			SharedClasses: true,
			BaseSeed:      Seed(42),
			SteadyRounds:  8,
		})
		c.Run()
		a := c.Analyze()
		return a.TotalGuestBytes(), a.TotalSavingsBytes()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", t1, s1, t2, s2)
	}
	// A different seed changes layout details but not the qualitative state.
	c := BuildCluster(ClusterConfig{
		Scale: 64, Specs: []WorkloadSpec{Tuscany()}, NumVMs: 2,
		SharedClasses: true, BaseSeed: Seed(43), SteadyRounds: 8,
	})
	c.Run()
	if c.Analyze().TotalGuestBytes() == 0 {
		t.Fatal("other seed broke the run")
	}
	_ = mem.Seed(0) // keep the internal import meaningful for Seed alias
}

func TestRenderersExported(t *testing.T) {
	memF, javaF := Fig2(Options{Scale: 64, Quick: true})
	if !strings.Contains(RenderMemFigure(memF), "FIG2") {
		t.Fatal("mem renderer")
	}
	if !strings.Contains(RenderJavaFigure(javaF), "Class metadata") {
		t.Fatal("java renderer")
	}
}

func TestPublicDumpWorkflow(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale: 64, Specs: []WorkloadSpec{Tuscany()}, NumVMs: 2,
		SharedClasses: true, SteadyRounds: 5,
	})
	c.Run()
	d := CaptureDump(c)
	d2, err := ReadDump(bytesReader(d.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	off := AnalyzeDump(d2)
	live := c.Analyze()
	if off.TotalGuestBytes() != live.TotalGuestBytes() {
		t.Fatalf("offline %d != live %d", off.TotalGuestBytes(), live.TotalGuestBytes())
	}
}

func TestPublicTrace(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale: 64, Specs: []WorkloadSpec{Tuscany()}, NumVMs: 1,
		EnableTrace: true, SteadyRounds: 3,
	})
	c.Run()
	if len(c.Trace.Events()) == 0 {
		t.Fatal("no trace events")
	}
}

func TestPublicSharedAOT(t *testing.T) {
	c := BuildCluster(ClusterConfig{
		Scale: 64, Specs: []WorkloadSpec{Tuscany()}, NumVMs: 1,
		SharedClasses: true, SharedAOT: true, SteadyRounds: 3,
	})
	c.Run()
	if c.Workers[0].JVM.LoadStats().AOTMethodsUsed == 0 {
		t.Fatal("AOT extension inert through the public API")
	}
}
