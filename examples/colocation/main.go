// Colocation: the Memory Buddies related-work baseline (§6) end to end.
// Eight mixed VMs arrive grouped by tenant; a content-blind round-robin
// placer splits similar VMs across hosts, while fingerprint-based packing
// reunites them — and the measured TPS savings show the difference. The
// paper's technique is complementary: it *creates* page identity that any
// placement can then exploit.
//
//	go run ./examples/colocation
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/workload"
)

func main() {
	const scale = 48
	specs := []workload.Spec{
		workload.DayTrader(), workload.DayTrader(),
		workload.TPCW(), workload.TPCW(),
		workload.Tuscany(), workload.Tuscany(),
	}

	fmt.Println("Fingerprinting each VM (solo warm-up run, page-content checksums)...")
	reqs := make([]placement.Request, len(specs))
	for i, s := range specs {
		reqs[i] = placement.Request{Spec: s, Fingerprint: core.FingerprintSpec(s, false, scale, 0)}
		fmt.Printf("  %-16s fingerprint: %6d distinct pages\n", s.Name, len(reqs[i].Fingerprint))
	}

	fmt.Println("\n--- Round-robin placement (content-blind) onto 3 hosts ---")
	rr := core.EvaluatePlacement(reqs, placement.RoundRobin(len(reqs), 3), false, scale, 0)
	fmt.Print(rr)

	fmt.Println("\n--- Memory Buddies placement (fingerprint similarity) ---")
	smart := core.EvaluatePlacement(reqs, placement.BySimilarity(reqs, 3, 2), false, scale, 0)
	fmt.Print(smart)

	fmt.Printf("\nSmart colocation recovers %.0f MB more than round-robin (%.0f vs %.0f).\n",
		smart.TotalSavedMB-rr.TotalSavedMB, smart.TotalSavedMB, rr.TotalSavedMB)
	fmt.Println("Note the paper's observation: for Java VMs, even perfect colocation is")
	fmt.Println("limited by the JVM's uncontrolled layouts — combine it with the shared")
	fmt.Println("class cache (SharedClasses=true) and the savings multiply.")
}
