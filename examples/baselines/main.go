// Baselines: the related-work comparison of §6 on one live memory state.
// Builds a 3×DayTrader cluster and contrasts what each technique recovers:
//
//   - TPS/KSM (the paper's vehicle): whole-page sharing, no read overhead;
//
//   - Difference Engine-style sub-page sharing + compression: more
//     recovery, but every patched/compressed page must be reconstructed on
//     access;
//
//   - Ballooning: reclaims only what guests can give up cheaply (their
//     page caches), and needs a resource manager to pick sizes.
//
//     go run ./examples/baselines
package main

import (
	"fmt"

	tpsim "repro"
)

func main() {
	c := tpsim.BuildCluster(tpsim.ClusterConfig{
		Specs:         []tpsim.WorkloadSpec{tpsim.DayTrader()},
		NumVMs:        3,
		SharedClasses: true,
	})
	c.Run()
	scale := int64(c.Cfg.Scale)
	mb := func(b int64) float64 { return float64(b*scale) / (1 << 20) }

	fmt.Println("Memory recovery on 3 × (WAS + DayTrader) guests, shared class cache on")
	fmt.Println()

	// 1. TPS (what actually ran).
	a := c.Analyze()
	fmt.Printf("TPS / KSM          : %7.0f MB recovered, 0 pages with read overhead\n",
		mb(a.TotalSavingsBytes()))

	// 2. Difference Engine analysis. It must see the raw, unmerged state,
	// so build the same cluster with the scanner disabled.
	raw := tpsim.BuildCluster(tpsim.ClusterConfig{
		Specs:         []tpsim.WorkloadSpec{tpsim.DayTrader()},
		NumVMs:        3,
		SharedClasses: true,
		DisableKSM:    true,
	})
	raw.Run()
	de := tpsim.DiffEngineAnalyze(raw, tpsim.DefaultDiffEngineConfig())
	fmt.Printf("Difference Engine  : %7.0f MB recoverable "+
		"(identical %0.f + sub-page %0.f + compression %0.f), %d pages need reconstruction on access\n",
		mb(de.TotalBytes()), mb(de.IdenticalBytes), mb(de.SubPageBytes), mb(de.CompressionBytes),
		de.AccessPenaltyPages)

	// 3. Ballooning: inflate against synthetic pressure and see what the
	// guests give back (their page caches).
	free := c.Host.FreeBytes()
	mgr := tpsim.NewBalloonManager(c, tpsim.BalloonConfig{
		LowWatermarkBytes: free + 1, // force one inflation round
		TargetFreeBytes:   free + (64<<20)/scale,
	})
	reclaimed := mgr.Balance()
	fmt.Printf("Ballooning         : %7.0f MB reclaimed (guest page caches only)\n",
		mb(int64(reclaimed)*4096))

	fmt.Println()
	fmt.Println("TPS-shared pages are read directly — the paper's argument for why TPS")
	fmt.Println("fits read-only class metadata, while compression/sub-page schemes pay a")
	fmt.Println("reconstruction cost on every access, and ballooning cannot recover")
	fmt.Println("anything the guests still need.")
}
