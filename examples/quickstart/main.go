// Quickstart: two guest VMs running WAS + DayTrader on one KVM-style host,
// measured twice — without and with the paper's technique (one populated
// shared class cache file copied into both VM images). Prints how much of
// each Java memory category Transparent Page Sharing recovers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	tpsim "repro"
)

func main() {
	fmt.Println("== Transparent Page Sharing in Java: quickstart ==")
	fmt.Println()

	for _, shared := range []bool{false, true} {
		label := "default configuration (no preloading)"
		if shared {
			label = "shared class cache copied to both VMs (-Xshareclasses)"
		}
		fmt.Printf("--- %s ---\n", label)

		cluster := tpsim.BuildCluster(tpsim.ClusterConfig{
			Specs:         []tpsim.WorkloadSpec{tpsim.DayTrader()},
			NumVMs:        2,
			SharedClasses: shared,
		})
		cluster.Run() // KSM warm-up at 10 000 pages/100 ms, then steady state

		analysis := cluster.Analyze()
		scale := int64(cluster.Cfg.Scale)
		mb := func(b int64) float64 { return float64(b*scale) / (1 << 20) }

		for _, vm := range analysis.VMBreakdowns() {
			fmt.Printf("%-6s uses %6.0f MB of host memory; TPS saves it %6.0f MB\n",
				vm.VMName, mb(vm.Total()), mb(vm.SavingsBytes))
		}
		for _, jb := range analysis.JavaBreakdowns() {
			cm := jb.ByCat["Class metadata"]
			frac := 0.0
			if cm.MappedBytes > 0 {
				frac = 100 * float64(cm.SharedBytes) / float64(cm.MappedBytes)
			}
			fmt.Printf("  %s JVM (pid %d): class metadata %5.0f MB, %5.1f%% shared with TPS\n",
				jb.VMName, jb.PID, mb(cm.MappedBytes), frac)
		}
		fmt.Println()
	}

	fmt.Println("The second run shows the paper's effect: with one cache file copied")
	fmt.Println("into every guest, the read-only class metadata has identical layout in")
	fmt.Println("all VMs and KSM merges it — the paper measures up to 89.6% of the class")
	fmt.Println("metadata eliminated for non-primary JVMs (Fig. 5(a)).")
}
