// Consolidation: the Fig. 7 scenario as a capacity-planning tool. Sweeps
// the number of DayTrader guest VMs on one 6 GB host and prints where the
// throughput cliff falls with and without the preloaded shared class cache
// — the paper's "one extra guest VM with acceptable performance".
//
//	go run ./examples/consolidation [-from N] [-to N] [-scale N]
package main

import (
	"flag"
	"fmt"

	tpsim "repro"
)

func main() {
	from := flag.Int("from", 6, "first VM count")
	to := flag.Int("to", 9, "last VM count")
	scale := flag.Int("scale", 0, "memory scale divisor (0 = default)")
	flag.Parse()

	fmt.Println("VMs | default config (req/s) | with shared cache (req/s)")
	fmt.Println("----+------------------------+--------------------------")

	lastOKDefault, lastOKShared := 0, 0
	for n := *from; n <= *to; n++ {
		var results [2]float64
		for i, shared := range []bool{false, true} {
			c := tpsim.BuildCluster(tpsim.ClusterConfig{
				Scale:              *scale,
				Specs:              []tpsim.WorkloadSpec{tpsim.DayTrader()},
				NumVMs:             n,
				SharedClasses:      shared,
				SteadyRounds:       8,
				IterationsPerRound: 25,
			})
			c.Run()
			perf := c.MeasurePerf(20)
			results[i] = tpsim.Aggregate(perf)
			// "Acceptable": within 25 % of the unloaded aggregate.
			unloaded := float64(n) * tpsim.DayTrader().BaseRequestsPerSec
			if results[i] > 0.75*unloaded {
				if shared {
					lastOKShared = n
				} else {
					lastOKDefault = n
				}
			}
		}
		fmt.Printf("%3d | %22.1f | %24.1f\n", n, results[0], results[1])
	}

	fmt.Println()
	fmt.Printf("Acceptable up to %d guest VMs with the default configuration,\n", lastOKDefault)
	fmt.Printf("and up to %d with the shared class cache — the technique buys %d extra VM(s).\n",
		lastOKShared, lastOKShared-lastOKDefault)
	fmt.Println("(Paper Fig. 7: 7 VMs default, 8 VMs with preloading.)")
}
