// Consolidation: the Fig. 7 scenario as a capacity-planning tool. Sweeps
// the number of DayTrader guest VMs on one 6 GB host and prints where the
// throughput cliff falls with and without the preloaded shared class cache
// — the paper's "one extra guest VM with acceptable performance".
//
// The search is embarrassingly parallel: every (VM count, configuration)
// cell builds its own cluster, so the cells fan out across -jobs workers
// and the table is assembled in order afterwards.
//
//	go run ./examples/consolidation [-from N] [-to N] [-scale N] [-jobs N]
package main

import (
	"flag"
	"fmt"

	tpsim "repro"
)

func main() {
	from := flag.Int("from", 6, "first VM count")
	to := flag.Int("to", 9, "last VM count")
	scale := flag.Int("scale", 0, "memory scale divisor (0 = default)")
	jobs := flag.Int("jobs", 0, "parallel cluster runs (0 = GOMAXPROCS)")
	flag.Parse()

	type cell struct {
		n          int
		shared     bool
		throughput float64
		acceptable bool
	}
	var cells []tpsim.Job[cell]
	for n := *from; n <= *to; n++ {
		for _, shared := range []bool{false, true} {
			n, shared := n, shared
			cells = append(cells, tpsim.Job[cell]{
				Label: fmt.Sprintf("n=%d shared=%v", n, shared),
				Run: func() cell {
					c := tpsim.BuildCluster(tpsim.ClusterConfig{
						Scale:              *scale,
						Specs:              []tpsim.WorkloadSpec{tpsim.DayTrader()},
						NumVMs:             n,
						SharedClasses:      shared,
						SteadyRounds:       8,
						IterationsPerRound: 25,
					})
					c.Run()
					agg := tpsim.Aggregate(c.MeasurePerf(20))
					// "Acceptable": within 25 % of the unloaded aggregate.
					unloaded := float64(n) * tpsim.DayTrader().BaseRequestsPerSec
					return cell{n: n, shared: shared, throughput: agg, acceptable: agg > 0.75*unloaded}
				},
			})
		}
	}
	results := tpsim.RunAll(tpsim.NewRunner(*jobs), cells)

	fmt.Println("VMs | default config (req/s) | with shared cache (req/s)")
	fmt.Println("----+------------------------+--------------------------")
	lastOKDefault, lastOKShared := 0, 0
	for i := 0; i < len(results); i += 2 {
		def, sh := results[i], results[i+1]
		fmt.Printf("%3d | %22.1f | %24.1f\n", def.n, def.throughput, sh.throughput)
		if def.acceptable {
			lastOKDefault = def.n
		}
		if sh.acceptable {
			lastOKShared = sh.n
		}
	}

	fmt.Println()
	fmt.Printf("Acceptable up to %d guest VMs with the default configuration,\n", lastOKDefault)
	fmt.Printf("and up to %d with the shared class cache — the technique buys %d extra VM(s).\n",
		lastOKShared, lastOKShared-lastOKDefault)
	fmt.Println("(Paper Fig. 7: 7 VMs default, 8 VMs with preloading.)")
}
