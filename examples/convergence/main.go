// Convergence: when has KSM "converged"? The paper's §2.C methodology
// warms up for a fixed interval at the fast scan rate (10 000 pages per
// 100 ms) and only then captures the sharing breakdowns. This walkthrough
// makes the interval visible: it builds the 4×DayTrader scenario with
// telemetry enabled, runs warm-up and steady state, then asks the
// convergence detector where the cumulative merged-pages series flattened —
// and compares that point with the fixed warm-up window. It finishes with
// the same scenario under AdaptiveWarmup, where the detector itself decides
// when warm-up is over.
//
//	go run ./examples/convergence
package main

import (
	"fmt"

	tpsim "repro"
)

func main() {
	fmt.Println("KSM convergence on 4 × (WAS + DayTrader), shared class cache off")
	fmt.Println()

	// 1. Fixed warm-up (the paper's methodology), with telemetry riding
	// along. Every gauge is read-only, so the run is bit-identical to one
	// without metrics.
	c := tpsim.BuildCluster(tpsim.ClusterConfig{
		Specs:         []tpsim.WorkloadSpec{tpsim.DayTrader()},
		NumVMs:        4,
		EnableMetrics: true,
	})
	c.Run()

	merged := c.Metrics.Get("ksm.pages_merged")
	at, ok := tpsim.ConvergenceConfig{}.ConvergedAt(merged)
	fmt.Printf("fixed warm-up ended at   %6.1fs (virtual)\n", c.WarmupEnded().Seconds())
	if ok {
		fmt.Printf("merged-pages flattened at %5.1fs — the fixed window was %s\n",
			at.Seconds(), verdict(at <= c.WarmupEnded()))
	} else {
		fmt.Println("merged-pages series never flattened (raise SteadyRounds?)")
	}
	fmt.Println()

	// 2. The scanner's view of the same run, as a timeline.
	fmt.Println(tpsim.RenderTimeline("fixed warm-up", c.Metrics))

	// 3. Adaptive warm-up: same scenario, but RunWarmup keeps the fast scan
	// rate only until the detector reports the merged-pages series steady.
	ca := tpsim.BuildCluster(tpsim.ClusterConfig{
		Specs:          []tpsim.WorkloadSpec{tpsim.DayTrader()},
		NumVMs:         4,
		AdaptiveWarmup: true,
	})
	ca.RunWarmup()
	fmt.Printf("adaptive warm-up ended at %5.1fs (virtual) vs %.1fs fixed\n",
		ca.WarmupEnded().Seconds(), c.WarmupEnded().Seconds())
	ca.RunSteady()

	// Both flows end in the same place: the sharing the analyzer reports
	// afterwards is what the paper's figures are made of.
	a, aa := c.Analyze(), ca.Analyze()
	scale := int64(c.Cfg.Scale)
	fmt.Printf("TPS savings: %.0f MB fixed, %.0f MB adaptive\n",
		float64(a.TotalSavingsBytes()*scale)/(1<<20),
		float64(aa.TotalSavingsBytes()*scale)/(1<<20))
}

func verdict(enough bool) string {
	if enough {
		return "long enough"
	}
	return "TOO SHORT"
}
