// Cachetuning: how much of the class-metadata sharing survives as the
// shared class cache shrinks below the class stack's footprint — the
// "classes worth preloading" trade-off §4.B discusses (an undersized cache
// overflows and the overflowed classes stay private in every VM).
//
//	go run ./examples/cachetuning
package main

import (
	"fmt"

	tpsim "repro"
)

func main() {
	fmt.Println("Shared-class-cache sizing for WAS + DayTrader (3 guest VMs)")
	fmt.Println()
	fmt.Println("cache MB | populated classes | overflowed | class metadata shared (non-primary avg)")
	fmt.Println("---------+-------------------+------------+----------------------------------------")

	for _, cacheMB := range []int64{120, 90, 60, 30, 15} {
		spec := tpsim.DayTrader()
		spec.CacheBytes = cacheMB << 20
		spec.CacheName = fmt.Sprintf("was-%dmb", cacheMB)

		c := tpsim.BuildCluster(tpsim.ClusterConfig{
			Specs:         []tpsim.WorkloadSpec{spec},
			NumVMs:        3,
			SharedClasses: true,
		})
		c.Run()
		a := c.Analyze()

		// Cache population report.
		var populated, overflowed int
		for _, w := range c.Workers {
			populated = w.JVM.LoadStats().ROMFromCache
			overflowed = w.JVM.LoadStats().ROMPrivate
		}

		// Sharing: average over the two non-primary JVMs (highest shares).
		var fracs []float64
		for _, jb := range a.JavaBreakdowns() {
			cm := jb.ByCat["Class metadata"]
			if cm.MappedBytes > 0 {
				fracs = append(fracs, float64(cm.SharedBytes)/float64(cm.MappedBytes))
			}
		}
		best, second := 0.0, 0.0
		for _, f := range fracs {
			if f > best {
				best, second = f, best
			} else if f > second {
				second = f
			}
		}
		fmt.Printf("%8d | %17d | %10d | %36.1f%%\n", cacheMB, populated, overflowed, 100*(best+second)/2)
	}

	fmt.Println()
	fmt.Println("A full-size cache (Table III: 120 MB) holds the whole middleware stack")
	fmt.Println("and recovers ≈90% of the class metadata; undersized caches overflow and")
	fmt.Println("the overflowed classes fall back to private, unshareable segments.")
}
