package tpsim

import (
	"repro/internal/balloon"
	"repro/internal/diffengine"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
)

// Related-work baselines (paper §6), exposed for comparison experiments.

// DiffEngineResult is what a Difference-Engine-style policy (sub-page
// sharing + compression, Gupta et al. OSDI '08) would recover from a live
// memory state.
type DiffEngineResult = diffengine.Result

// DiffEngineConfig tunes the Difference Engine analysis.
type DiffEngineConfig = diffengine.Config

// DiffEngineAnalyze scans a cluster's host and reports the recoverable
// memory under whole-page sharing, sub-page delta sharing, and compression,
// together with the access-penalty page count TPS avoids.
func DiffEngineAnalyze(c *Cluster, cfg DiffEngineConfig) DiffEngineResult {
	return diffengine.Analyze(c.Host, cfg)
}

// DefaultDiffEngineConfig mirrors Difference Engine's thresholds.
func DefaultDiffEngineConfig() DiffEngineConfig { return diffengine.DefaultConfig() }

// BalloonManager is the ballooning baseline (Waldspurger OSDI '02): a
// manager that reclaims guest page cache under host memory pressure.
type BalloonManager = balloon.Manager

// BalloonConfig tunes the balloon manager.
type BalloonConfig = balloon.Config

// NewBalloonManager attaches a balloon manager to a cluster's guests.
func NewBalloonManager(c *Cluster, cfg BalloonConfig) *BalloonManager {
	return balloon.NewManager(c.Host, c.Kernels, cfg)
}

// Re-exported low-level types for advanced scenario composition.
type (
	// Host is the KVM-style machine.
	Host = hypervisor.Host
	// GuestKernel is one guest's operating system instance.
	GuestKernel = guestos.Kernel
)
