// Sharded-scanner benchmark: the wall-clock cost of a steady-state KSM scan
// pass at shard counts 1, 2 and 4 over the same cluster. Merge outcomes are
// byte-identical at every shard count (internal/ksm's equivalence tests and
// the CI ksmshard smoke pin that); the shard axis buys scan-pass wall time,
// and BENCH_ksmshard.json records the measured pair of effects:
//
//   - structural: each shard owns a stable treap of 1/Nth the nodes, so every
//     lookup and insert descends a shallower tree. The scenario makes that
//     cost visible the way real KSM deployments meet it — pages that share a
//     long common prefix and differ near the tail (think zero-initialized
//     heap pages with object headers, or guest page-cache pages of versioned
//     files), where every treap comparison is a near-full-page memcmp. This
//     is the memcmp-bound stable-tree regime the Linux KSM literature
//     complains about, and it is where smaller trees matter even on one CPU.
//   - parallel: classify and per-shard merge run on a worker pool, so on a
//     multi-core host the depth win compounds with real concurrency. The
//     container this repo is benchmarked in exposes a single CPU, so the
//     JSON's numbers isolate the structural effect; the pool's correctness
//     under real parallelism is covered by the -race CI run.
package tpsim

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/simclock"
)

// shardBenchCluster builds two guests whose pages all share a 4088-byte
// common prefix: dup contents are duplicated across both guests (they merge
// during warm-up and become the stable tree), uniq contents per guest stay
// private (every steady-state pass walks each of them through a full
// stable-tree lookup miss).
func shardBenchCluster(b *testing.B, shards, dup, uniq int) (*ksm.KSM, int) {
	b.Helper()
	const pageBytes = 4096
	clock := simclock.New()
	host := hypervisor.NewHost(hypervisor.Config{
		Name:     "bench",
		RAMBytes: int64(4*(dup+uniq)) * pageBytes,
	}, clock)
	cfg := ksm.DefaultConfig()
	cfg.Shards = shards
	k := ksm.New(host, cfg)
	tail := make([]byte, 8)
	pages := 0
	for v := 0; v < 2; v++ {
		vm := host.NewVM(hypervisor.VMConfig{
			Name:          "vm",
			GuestMemBytes: int64(dup+uniq) * pageBytes,
			Seed:          mem.Seed(v + 1),
		})
		for p := 0; p < dup+uniq; p++ {
			vm.FillGuestPage(uint64(p), mem.Seed(42)) // the shared prefix
			id := uint64(p)
			if p >= dup {
				id = uint64(1+v)<<32 | uint64(p) // per-guest unique tail
			}
			binary.BigEndian.PutUint64(tail, id)
			vm.WriteGuestPage(uint64(p), pageBytes-len(tail), tail)
		}
		pages += dup + uniq
	}
	k.RegisterAll()
	// Warm up: sighting pass, merge pass, one steady pass (all content
	// materialized, every checksum cached, stable tree fully grown).
	for i := 0; i < 3; i++ {
		k.ScanChunk(pages)
	}
	if s := k.Stats(); s.PagesShared != dup {
		b.Fatalf("stable tree holds %d pages after warm-up, want %d", s.PagesShared, dup)
	}
	return k, pages
}

// BenchmarkShardedScanPass times one full steady-state scan pass per
// iteration: 2×dup already-merged pages short-circuit, 2×uniq private pages
// each pay a volatility-gate check plus a stable-tree lookup miss. ns/op is
// the scan-pass wall time BENCH_ksmshard.json tracks down the shard axis.
func BenchmarkShardedScanPass(b *testing.B) {
	const (
		dup  = 4096
		uniq = 8192
	)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			k, pages := shardBenchCluster(b, shards, dup, uniq)
			b.SetBytes(int64(pages) * 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.ScanChunk(pages)
			}
			b.ReportMetric(float64(pages), "pages/pass")
		})
	}
}
